"""Tests for the content-addressed TrialStore: sharding, atomicity,
corruption tolerance (a damaged record reads as a miss, never a crash)."""

import json
import multiprocessing

import pytest

from repro.attacks.trial import Trial, TrialBatch
from repro.campaign import SCHEMA_VERSION, TrialStore


def make_batch(seed: int = 1, n: int = 3) -> TrialBatch:
    trials = [
        Trial(index=i, true_outcome=i % 2, inferred_outcome=i % 2, success=True, cycles=10)
        for i in range(n)
    ]
    return TrialBatch(
        attack="variant1",
        seed=seed,
        machine="i7-9700",
        rounds=n,
        trials=trials,
        quality=1.0,
        detail=f"{n}/{n}",
        simulated_cycles=100,
        spans={"total": {"count": 1, "cycles": 100, "wall_seconds": 0.1}},
        metrics={"machine.cycles": 100},
        notes={"k": "v"},
    )


KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62


class TestStoreBasics:
    def test_miss_then_hit(self, tmp_path):
        store = TrialStore(tmp_path)
        assert store.get(KEY) is None
        assert KEY not in store
        batch = make_batch()
        store.put(KEY, batch)
        assert KEY in store
        restored = store.get(KEY)
        assert restored.as_dict() == batch.as_dict()

    def test_round_trip_across_handles(self, tmp_path):
        TrialStore(tmp_path).put(KEY, make_batch(seed=7))
        restored = TrialStore(tmp_path).get(KEY)
        assert restored.seed == 7
        assert restored.n_trials == 3

    def test_sharded_by_key_prefix(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(KEY, make_batch())
        store.put(OTHER_KEY, make_batch(seed=2))
        assert (tmp_path / "shards" / "ab.jsonl").exists()
        assert (tmp_path / "shards" / "cd.jsonl").exists()
        assert sorted(store.keys()) == sorted([KEY, OTHER_KEY])
        assert len(store) == 2

    def test_put_is_idempotent_last_write_wins(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(KEY, make_batch(seed=1))
        store.put(KEY, make_batch(seed=2))
        assert len(store) == 1
        assert store.get(KEY).seed == 2

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = TrialStore(tmp_path)
        for i, key in enumerate((KEY, OTHER_KEY)):
            store.put(key, make_batch(seed=i))
        leftovers = [p for p in (tmp_path / "shards").iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_marker_written_once(self, tmp_path):
        TrialStore(tmp_path)
        marker = json.loads((tmp_path / "store.json").read_text())
        assert marker["format"] == "repro.campaign.TrialStore"
        assert marker["schema"] == SCHEMA_VERSION


class TestCorruptionTolerance:
    def shard_path(self, tmp_path):
        return tmp_path / "shards" / "ab.jsonl"

    def test_truncated_line_reads_as_miss(self, tmp_path):
        TrialStore(tmp_path).put(KEY, make_batch())
        path = self.shard_path(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        store = TrialStore(tmp_path)
        assert store.get(KEY) is None
        assert store.corrupt_lines == 1

    def test_garbage_line_skipped_good_line_served(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(KEY, make_batch())
        path = self.shard_path(tmp_path)
        path.write_text("not json at all\n" + path.read_text())
        reopened = TrialStore(tmp_path)
        assert reopened.get(KEY) is not None
        assert reopened.corrupt_lines == 1

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(KEY, make_batch())
        path = self.shard_path(tmp_path)
        record = json.loads(path.read_text())
        record["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(record) + "\n")
        assert TrialStore(tmp_path).get(KEY) is None

    def test_inconsistent_batch_record_reads_as_miss(self, tmp_path):
        # Valid JSON whose aggregates contradict its trial list — e.g. a
        # partially-written record: from_dict cross-checks and the store
        # turns that failure into a miss so the cell re-runs.
        store = TrialStore(tmp_path)
        store.put(KEY, make_batch())
        path = self.shard_path(tmp_path)
        record = json.loads(path.read_text())
        record["batch"]["n_trials"] = 99
        path.write_text(json.dumps(record) + "\n")
        reopened = TrialStore(tmp_path)
        assert reopened.get(KEY) is None
        assert reopened.corrupt_lines == 1

    def test_rewrite_drops_corrupt_lines(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(KEY, make_batch())
        path = self.shard_path(tmp_path)
        path.write_text("garbage\n" + path.read_text())
        reopened = TrialStore(tmp_path)
        reopened.put(KEY, make_batch(seed=5))  # rewrite of the same shard
        assert "garbage" not in path.read_text()
        assert TrialStore(tmp_path).get(KEY).seed == 5


def _hammer_shard(root: str, writer: int, puts: int) -> None:
    """Worker: write ``puts`` records into one shard of a shared store.

    Module-level so it pickles across a spawn-start pool.  Every key has
    the same two-char prefix, forcing all writers onto one shard file —
    the worst case for interleaving.
    """
    store = TrialStore(root)
    for i in range(puts):
        key = "ab" + f"{writer:031x}{i:031x}"
        trial = Trial(
            index=0, true_outcome=0, inferred_outcome=0, success=True, cycles=1
        )
        batch = TrialBatch(
            attack="variant1",
            seed=writer * 1000 + i,
            machine="i7-9700",
            rounds=1,
            trials=[trial],
            quality=1.0,
            detail="1/1",
            simulated_cycles=1,
            spans={},
            metrics={},
            notes={"writer": writer, "i": i},
        )
        store.put(key, batch)


class TestConcurrentWriters:
    def test_parallel_writers_never_tear_lines(self, tmp_path):
        """Atomicity property under real process concurrency.

        Two processes hammer the *same* shard file.  The atomic
        tmp + ``os.replace`` discipline means a concurrent
        read-modify-write may *lose* a fresh record (the campaign
        runner simply re-executes the cell), but it must never produce
        a torn or interleaved line: after the dust settles every line
        in the shard parses, validates, and round-trips.
        """
        writers, puts = 2, 25
        processes = [
            multiprocessing.Process(
                target=_hammer_shard, args=(str(tmp_path), w, puts)
            )
            for w in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        shard = tmp_path / "shards" / "ab.jsonl"
        lines = [line for line in shard.read_text().splitlines() if line.strip()]
        assert lines, "both writers vanished without a trace"
        seen = set()
        for line in lines:
            record = json.loads(line)  # a torn line would raise here
            assert record["schema"] == SCHEMA_VERSION
            assert record["key"].startswith("ab")
            batch = TrialBatch.from_dict(record["batch"])
            notes = batch.notes
            # Round-trip: the record is exactly what some writer put.
            assert record["key"] == "ab" + (
                f"{notes['writer']:031x}{notes['i']:031x}"
            )
            seen.add(record["key"])
        assert len(seen) == len(lines)  # no duplicate lines either

        # A fresh handle reads the store without tripping the corrupt
        # counter, and the last writer of the shard kept all its records.
        store = TrialStore(tmp_path)
        assert len(store) == len(lines)
        assert store.corrupt_lines == 0
        per_writer = [
            sum(1 for key in seen if key.startswith("ab" + f"{w:031x}"))
            for w in range(writers)
        ]
        assert max(per_writer) == puts

    def test_no_tmp_droppings_after_concurrent_writes(self, tmp_path):
        processes = [
            multiprocessing.Process(target=_hammer_shard, args=(str(tmp_path), w, 10))
            for w in range(2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
        leftovers = [p for p in (tmp_path / "shards").iterdir() if ".tmp" in p.name]
        assert leftovers == []


class TestFromDictValidation:
    def test_n_trials_mismatch_raises(self):
        data = make_batch().as_dict()
        data["n_trials"] = 99
        with pytest.raises(ValueError, match="corrupt batch record"):
            TrialBatch.from_dict(data)

    def test_successes_mismatch_raises(self):
        data = make_batch().as_dict()
        data["successes"] = 0
        with pytest.raises(ValueError, match="corrupt batch record"):
            TrialBatch.from_dict(data)
