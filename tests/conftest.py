"""Shared fixtures.

``quiet_machine`` — deterministic, noise-free (reverse-engineering style).
``noisy_machine`` — the default calibrated noise model.
Both are Coffee Lake (the paper's SGX-capable machine); Haswell-specific
behaviour is tested explicitly where it matters.
"""

from __future__ import annotations

import pytest

from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700, HASWELL_I7_4770


@pytest.fixture
def quiet_machine() -> Machine:
    return Machine(COFFEE_LAKE_I7_9700.quiet(), seed=1234)


@pytest.fixture
def noisy_machine() -> Machine:
    return Machine(COFFEE_LAKE_I7_9700, seed=1234)


@pytest.fixture
def haswell_machine() -> Machine:
    return Machine(HASWELL_I7_4770.quiet(), seed=1234)


@pytest.fixture
def user_context(quiet_machine):
    ctx = quiet_machine.new_thread("user")
    quiet_machine.context_switch(ctx)
    return ctx
