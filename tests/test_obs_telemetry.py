"""Tests for cross-process telemetry: envelopes, timelines, attribution.

The contract under test (ISSUE 8 acceptance criteria):

* the attribution buckets partition the wall interval — coverage is
  100% by construction on synthetic timelines and ≥95% on real runs;
* same-seed aggregates are **byte-identical** with telemetry on vs off
  (the envelope carries the batch, it never touches it);
* the Chrome-trace export labels one process lane per worker pid plus a
  parent lane, via the shared :class:`ChromeTraceWriter` metadata shape.
"""

import json

import pytest

from repro.attacks import attack_names
from repro.attacks.executor import (
    TaskError,
    TrialExecutor,
    TrialTask,
    build_matrix,
    run_task_safe,
    run_task_telemetry,
)
from repro.attacks.trial import TrialBatch
from repro.campaign import CampaignRunner, CampaignSpec, TrialStore
from repro.campaign.render import render_markdown, render_result
from repro.obs.telemetry import (
    BUCKETS,
    TaskRecord,
    TelemetryCollector,
    TelemetryEnvelope,
    Timeline,
    WorkerTelemetry,
    _interval_union,
    capture_worker,
)
from repro.params import preset


def canonical(merged: dict[str, TrialBatch]) -> bytes:
    return json.dumps(
        {name: batch.wall_clock_free_dict() for name, batch in merged.items()},
        sort_keys=True,
        separators=(",", ":"),
    ).encode()


def tiny_tasks(n_attacks: int = 2, repeats: int = 1) -> list[TrialTask]:
    return build_matrix(
        attack_names()[:n_attacks], base_seed=2023, repeats=repeats, rounds=1
    )


# --------------------------------------------------------------------------- #
# interval union
# --------------------------------------------------------------------------- #


class TestIntervalUnion:
    def test_disjoint(self):
        assert _interval_union([(0.0, 1.0), (2.0, 3.0)]) == pytest.approx(2.0)

    def test_overlapping_merge(self):
        assert _interval_union([(0.0, 2.0), (1.0, 3.0)]) == pytest.approx(3.0)

    def test_contained_interval_ignored(self):
        assert _interval_union([(0.0, 4.0), (1.0, 2.0)]) == pytest.approx(4.0)

    def test_empty_and_degenerate(self):
        assert _interval_union([]) == 0.0
        assert _interval_union([(1.0, 1.0), (2.0, 1.0)]) == 0.0

    def test_unsorted_input(self):
        assert _interval_union([(5.0, 6.0), (0.0, 1.0)]) == pytest.approx(2.0)


# --------------------------------------------------------------------------- #
# worker-side capture
# --------------------------------------------------------------------------- #


class TestCaptureWorker:
    def test_batch_envelope(self):
        task = tiny_tasks(1)[0]
        envelope = capture_worker(run_task_safe, task)
        assert isinstance(envelope, TelemetryEnvelope)
        assert isinstance(envelope.outcome, TrialBatch)
        worker = envelope.telemetry
        assert worker.ok
        assert worker.end >= worker.start
        assert worker.n_trials == envelope.outcome.n_trials
        assert worker.simulated_cycles > 0

    def test_error_envelope_not_ok(self):
        task = TrialTask(attack="no-such-attack", params=preset("i7-9700"), seed=1)
        envelope = capture_worker(run_task_safe, task)
        assert isinstance(envelope.outcome, TaskError)
        assert not envelope.telemetry.ok
        assert envelope.telemetry.span_wall == {}

    def test_run_task_telemetry_entry_point(self):
        envelope = run_task_telemetry(tiny_tasks(1)[0])
        assert isinstance(envelope, TelemetryEnvelope)
        assert envelope.telemetry.ok

    def test_envelope_outcome_untouched(self):
        """Same seed, wrapped vs bare: the batch payloads are identical."""
        task = tiny_tasks(1)[0]
        bare = run_task_safe(task)
        wrapped = capture_worker(run_task_safe, task).outcome
        assert canonical({"cell": bare}) == canonical({"cell": wrapped})


# --------------------------------------------------------------------------- #
# synthetic timeline: the partition is exact
# --------------------------------------------------------------------------- #


def synthetic_timeline() -> Timeline:
    """Hand-built two-worker timeline with known bucket values.

    wall=10, window=[1,8]; worker 101 busy [1,4], worker 102 busy [4,8]
    → compute 7, queue 0; serialize 0.5 + merge 0.5 measured outside the
    window; serial = 10 − 8 = 2.  Exact partition, coverage 1.0.
    """
    w1 = WorkerTelemetry(pid=101, start=1.0, end=4.0, ok=True, n_trials=3)
    w2 = WorkerTelemetry(pid=102, start=4.0, end=8.0, ok=True, n_trials=4)
    return Timeline(
        jobs=2,
        origin=0.0,
        wall_seconds=10.0,
        records=[
            TaskRecord(
                index=0, label="a", request_bytes=1024, dispatch_ts=1.0,
                receive_ts=4.5, result_bytes=2048, worker=w1,
            ),
            TaskRecord(
                index=1, label="b", request_bytes=512, dispatch_ts=1.0,
                receive_ts=8.0, result_bytes=4096, worker=w2,
            ),
        ],
        windows=[(1.0, 8.0)],
        serialize_seconds=0.5,
        merge_seconds=0.5,
    )


class TestTimelineAttribution:
    def test_buckets_partition_wall(self):
        timeline = synthetic_timeline()
        buckets = timeline.buckets()
        assert set(buckets) == set(BUCKETS)
        assert buckets["serialize"] == pytest.approx(0.5)
        assert buckets["queue"] == pytest.approx(0.0)
        assert buckets["compute"] == pytest.approx(7.0)
        assert buckets["merge"] == pytest.approx(0.5)
        assert buckets["serial"] == pytest.approx(2.0)
        assert sum(buckets.values()) == pytest.approx(timeline.wall_seconds)

    def test_coverage_is_exact(self):
        attribution = synthetic_timeline().attribution()
        assert attribution["coverage"] == pytest.approx(1.0)
        shares = [entry["share"] for entry in attribution["buckets"].values()]
        assert sum(shares) == pytest.approx(1.0)

    def test_dominant_overhead_excludes_compute(self):
        # compute (7s) dominates everything, but it is work, not overhead:
        # the largest *overhead* bucket is the 2s serial remainder.
        assert synthetic_timeline().dominant_overhead() == "serial"

    def test_queue_bucket_from_idle_window(self):
        """A worker busy for only part of the window leaves queue time."""
        w = WorkerTelemetry(pid=7, start=2.0, end=5.0, ok=True)
        timeline = Timeline(
            jobs=1, origin=0.0, wall_seconds=10.0,
            records=[TaskRecord(index=0, label="x", dispatch_ts=1.0, worker=w)],
            windows=[(1.0, 8.0)],
            serialize_seconds=0.0, merge_seconds=0.0,
        )
        buckets = timeline.buckets()
        assert buckets["compute"] == pytest.approx(3.0)
        assert buckets["queue"] == pytest.approx(4.0)
        assert timeline.dominant_overhead() == "queue"

    def test_serial_path_without_windows(self):
        w = WorkerTelemetry(pid=1, start=1.0, end=4.0, ok=True)
        timeline = Timeline(
            jobs=1, origin=0.0, wall_seconds=5.0,
            records=[TaskRecord(index=0, label="x", worker=w)],
            windows=[], serialize_seconds=0.0, merge_seconds=0.0,
        )
        buckets = timeline.buckets()
        assert buckets["compute"] == pytest.approx(3.0)
        assert buckets["queue"] == 0.0
        assert buckets["serial"] == pytest.approx(2.0)

    def test_utilization(self):
        # busy 3+4 = 7 worker-seconds over 7s window × 2 jobs = 0.5.
        assert synthetic_timeline().utilization() == pytest.approx(0.5)

    def test_lanes_grouped_by_pid(self):
        lanes = synthetic_timeline().lanes()
        assert sorted(lanes) == [101, 102]
        assert [record.label for record in lanes[101]] == ["a"]

    def test_totals(self):
        totals = synthetic_timeline().totals()
        assert totals["tasks"] == 2
        assert totals["request_bytes"] == 1536
        assert totals["result_bytes"] == 6144
        assert totals["compute_seconds"] == pytest.approx(7.0)


class TestTimelineRendering:
    def test_as_dict_shape(self):
        data = synthetic_timeline().as_dict()
        assert set(data) == {"attribution", "totals", "lanes"}
        assert set(data["lanes"]) == {"101", "102"}
        json.dumps(data)  # must be JSON-serializable as-is

    def test_render_text_mentions_buckets_and_workers(self):
        text = synthetic_timeline().render_text()
        for name in BUCKETS:
            assert name in text
        assert "pid 101" in text
        assert "pid 102" in text
        assert "utilization" in text

    def test_write_chrome_labeled_lanes(self, tmp_path):
        path = tmp_path / "timeline.trace.json"
        synthetic_timeline().write_chrome(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert names == {"executor (parent)", "worker pid 101", "worker pid 102"}
        # one distinct stable pid per lane, starting at 1
        pids = sorted({e["pid"] for e in meta})
        assert pids == [1, 2, 3]
        slices = [e for e in events if e["ph"] == "X"]
        labels = {e["name"] for e in slices}
        assert {"serialize", "pool window", "merge", "a", "b"} <= labels
        # timestamps are µs relative to the origin, inside the wall window
        assert all(0.0 <= e["ts"] <= 10.0 * 1e6 for e in slices)


# --------------------------------------------------------------------------- #
# collector bookkeeping
# --------------------------------------------------------------------------- #


class TestTelemetryCollector:
    def test_serialize_and_merge_phases_accumulate(self):
        collector = TelemetryCollector(jobs=1)
        collector.add_request(0, "cell", {"payload": list(range(100))})
        assert collector.records[0].request_bytes > 0
        assert collector.serialize_seconds > 0
        with collector.merge_phase():
            pass
        assert collector.merge_seconds >= 0
        timeline = collector.finish()
        assert isinstance(timeline, Timeline)
        assert timeline.wall_seconds > 0

    def test_merge_phase_charges_time_on_exception(self):
        collector = TelemetryCollector(jobs=1)
        with pytest.raises(RuntimeError):
            with collector.merge_phase():
                raise RuntimeError("merge blew up")
        assert collector.merge_seconds > 0

    def test_finish_tolerates_open_window(self):
        collector = TelemetryCollector(jobs=2)
        collector.add_request(0, "cell", "x")
        collector.window_begin()
        timeline = collector.finish()
        assert len(timeline.windows) == 1


# --------------------------------------------------------------------------- #
# executor integration
# --------------------------------------------------------------------------- #


class TestExecutorTelemetry:
    def test_off_by_default(self):
        result = TrialExecutor(jobs=1).run(tiny_tasks(1))
        assert result.telemetry is None
        assert "telemetry" not in result.as_dict()

    def test_serial_timeline_attribution(self):
        result = TrialExecutor(jobs=1, telemetry=True).run(tiny_tasks(2))
        timeline = result.telemetry
        assert isinstance(timeline, Timeline)
        assert len(timeline.records) == 2
        assert all(record.worker is not None for record in timeline.records)
        assert timeline.attribution()["coverage"] >= 0.95
        assert "telemetry" in result.as_dict()

    def test_aggregates_byte_identical_on_off(self):
        tasks = tiny_tasks(2)
        plain = TrialExecutor(jobs=1).run(tasks)
        instrumented = TrialExecutor(jobs=1, telemetry=True).run(tasks)
        assert canonical(plain.merged) == canonical(instrumented.merged)

    def test_error_task_recorded_not_ok(self):
        bad = TrialTask(attack="no-such-attack", params=preset("i7-9700"), seed=1)
        result = TrialExecutor(jobs=1, telemetry=True).run([bad])
        assert len(result.errors) == 1
        (record,) = result.telemetry.records
        assert record.worker is not None
        assert not record.worker.ok

    @pytest.mark.slow
    def test_pool_timeline_matches_serial_aggregates(self):
        tasks = tiny_tasks(2)
        serial = TrialExecutor(jobs=1).run(tasks)
        pooled = TrialExecutor(jobs=2, telemetry=True).run(tasks)
        assert canonical(serial.merged) == canonical(pooled.merged)
        timeline = pooled.telemetry
        assert timeline.jobs == 2
        assert len(timeline.windows) == 1
        assert timeline.attribution()["coverage"] >= 0.95


# --------------------------------------------------------------------------- #
# campaign integration
# --------------------------------------------------------------------------- #


def tiny_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="telemetry-t",
        attacks=("variant1",),
        repeats=1,
        rounds=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestCampaignTelemetry:
    def test_runner_attaches_timeline(self, tmp_path):
        runner = CampaignRunner(TrialStore(tmp_path / "store"), telemetry=True)
        result = runner.run(tiny_spec())
        assert isinstance(result.telemetry, Timeline)
        assert len(result.telemetry.records) == len(result.outcomes)
        assert result.telemetry.attribution()["coverage"] >= 0.95

    def test_aggregates_match_telemetry_off(self, tmp_path):
        on = CampaignRunner(TrialStore(tmp_path / "on"), telemetry=True).run(
            tiny_spec()
        )
        off = CampaignRunner(TrialStore(tmp_path / "off")).run(tiny_spec())
        assert off.telemetry is None
        assert json.dumps(on.aggregates(), sort_keys=True) == json.dumps(
            off.aggregates(), sort_keys=True
        )

    def test_render_result_includes_time_went(self, tmp_path):
        runner = CampaignRunner(TrialStore(tmp_path / "store"), telemetry=True)
        result = runner.run(tiny_spec())
        text = render_result(result)
        assert "where the time went:" in text
        markdown = render_markdown(result)
        assert "### Where the time went" in markdown
        assert "dominant overhead" in markdown

    def test_render_omits_section_without_telemetry(self, tmp_path):
        result = CampaignRunner(TrialStore(tmp_path / "store")).run(tiny_spec())
        assert "where the time went:" not in render_result(result)
        assert "Where the time went" not in render_markdown(result)

    def test_cached_rerun_keeps_timeline_empty(self, tmp_path):
        store = TrialStore(tmp_path / "store")
        CampaignRunner(store, telemetry=True).run(tiny_spec())
        rerun = CampaignRunner(store, telemetry=True).run(tiny_spec())
        assert rerun.executed_count == 0
        # every cell came from the cache: nothing was dispatched
        assert len(rerun.telemetry.records) == 0
