"""Tests for the training gadget and stride detection."""

import pytest

from repro.core.detect import detect_stride, detect_stride_pairs, hot_pairs
from repro.core.gadget import MultiTargetTrainingGadget, TrainingGadget
from repro.utils.bits import low_bits


class TestHotPairs:
    def test_finds_pair(self):
        assert hot_pairs([3, 10], 7) == [(3, 10)]

    def test_no_pair(self):
        assert hot_pairs([3, 11], 7) == []

    def test_multiple_pairs(self):
        assert hot_pairs([0, 7, 14], 7) == [(0, 7), (7, 14)]

    def test_duplicates_collapse(self):
        assert hot_pairs([3, 3, 10], 7) == [(3, 10)]

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            hot_pairs([1], 0)


class TestDetectStride:
    def test_clean_signal(self):
        # demand 20, buddy 21, prefetch 27
        assert detect_stride([20, 21, 27], [7, 13]) == 7

    def test_other_stride(self):
        assert detect_stride([20, 21, 33], [7, 13]) == 13

    def test_no_signal(self):
        assert detect_stride([20, 21], [7, 13]) is None

    def test_anchored_triple_beats_noise_pair(self):
        """A noise line forming a bare 13-pair must not outvote the real
        anchored (demand+buddy+prefetch) 7-pattern."""
        hot = [20, 21, 27, 40, 53]  # (40, 53) is a bare noise 13-pair
        assert detect_stride(hot, [7, 13]) == 7

    def test_symmetric_ambiguity_is_none(self):
        # Two equally-supported strides: refuse to guess.
        hot = [20, 21, 27, 33]  # 20+7 and 20+13, both anchored at 20
        assert detect_stride(hot, [7, 13]) is None

    def test_empty(self):
        assert detect_stride([], [7, 13]) is None

    def test_pairs_diagnostics(self):
        pairs = detect_stride_pairs([20, 27, 33], [7, 13])
        assert pairs[7] == [(20, 27)]
        assert pairs[13] == [(20, 33)]


class TestTrainingGadget:
    @pytest.fixture
    def attacker(self, quiet_machine):
        ctx = quiet_machine.new_thread("attacker")
        quiet_machine.context_switch(ctx)
        return ctx

    def test_gadget_aliases_both_targets(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A)
        assert low_bits(gadget.if_ip, 8) == 0xE6
        assert low_bits(gadget.else_ip, 8) == 0x3A

    def test_training_saturates_both_entries(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A)
        gadget.train(4)
        assert gadget.confidences() == (3, 3)

    def test_strides_recorded(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A, 7, 13)
        gadget.train()
        assert quiet_machine.ip_stride.entry_for_ip(gadget.if_ip).stride == 7 * 64
        assert quiet_machine.ip_stride.entry_for_ip(gadget.else_ip).stride == 13 * 64

    def test_aliasing_targets_rejected(self, quiet_machine, attacker):
        with pytest.raises(ValueError):
            TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x4019E6)  # same low byte

    def test_equal_strides_rejected(self, quiet_machine, attacker):
        with pytest.raises(ValueError):
            TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A, 7, 7)

    def test_stride_out_of_range_rejected(self, quiet_machine, attacker):
        with pytest.raises(ValueError):
            TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A, 7, 40)

    def test_too_few_iterations_rejected(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A)
        with pytest.raises(ValueError):
            gadget.train(2)

    def test_too_many_iterations_rejected(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A)
        with pytest.raises(ValueError):
            gadget.train(20)  # would wrap the training page

    def test_monitored_indexes(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A)
        assert gadget.monitored_indexes == {0xE6, 0x3A}

    def test_is_a_two_target_gadget(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A)
        assert isinstance(gadget, MultiTargetTrainingGadget)
        assert gadget.ips == (gadget.if_ip, gadget.else_ip)
        assert gadget.buffers == (gadget.train_if, gadget.train_else)
        assert gadget.strides == (gadget.s1_lines, gadget.s2_lines)

    def test_retraining_after_clobber(self, quiet_machine, attacker):
        gadget = TrainingGadget(quiet_machine, attacker, 0x4018E6, 0x40193A)
        gadget.train()
        # A victim-like aliasing load clobbers the if entry.
        buf = quiet_machine.new_buffer(attacker.space, 4096)
        quiet_machine.warm_tlb(attacker, buf.base)
        quiet_machine.load(attacker, 0x9900E6, buf.base)
        assert quiet_machine.ip_stride.entry_for_ip(gadget.if_ip).confidence == 1
        gadget.train()
        assert gadget.confidences()[0] >= 2


class TestMultiTargetGadget:
    TARGETS = [(0x4013A7, 5), (0x4014B2, 7), (0x4015C3, 11)]

    @pytest.fixture
    def attacker(self, quiet_machine):
        ctx = quiet_machine.new_thread("attacker")
        quiet_machine.context_switch(ctx)
        return ctx

    def test_empty_targets_rejected(self, quiet_machine, attacker):
        with pytest.raises(ValueError):
            MultiTargetTrainingGadget(quiet_machine, attacker, [])

    def test_aliasing_targets_rejected(self, quiet_machine, attacker):
        with pytest.raises(ValueError):
            MultiTargetTrainingGadget(
                quiet_machine, attacker, [(0x4013A7, 5), (0x4019A7, 7)]
            )

    def test_stride_out_of_range_rejected(self, quiet_machine, attacker):
        with pytest.raises(ValueError):
            MultiTargetTrainingGadget(quiet_machine, attacker, [(0x4013A7, 40)])

    def test_trains_one_entry_per_target(self, quiet_machine, attacker):
        gadget = MultiTargetTrainingGadget(quiet_machine, attacker, self.TARGETS)
        gadget.train()
        assert gadget.confidences() == (2, 2, 2)
        assert gadget.monitored_indexes == {0xA7, 0xB2, 0xC3}
        for ip, (target_ip, stride) in zip(gadget.ips, self.TARGETS):
            assert low_bits(ip, 8) == low_bits(target_ip, 8)
            entry = quiet_machine.ip_stride.entry_for_ip(ip)
            assert entry.stride == stride * 64

    def test_check_entry_reads_back_disturbance(self, quiet_machine, attacker):
        gadget = MultiTargetTrainingGadget(quiet_machine, attacker, self.TARGETS)
        gadget.train()
        victim = quiet_machine.new_thread("victim")
        quiet_machine.context_switch(victim)
        buf = quiet_machine.new_buffer(victim.space, 4096)
        quiet_machine.warm_tlb(victim, buf.base)
        # The victim's single load aliases target 0 only.
        quiet_machine.load(victim, 0x9913A7, buf.base)
        quiet_machine.context_switch(attacker)
        assert [gadget.check_entry(k) for k in range(3)] == [False, True, True]

    def test_check_entry_out_of_range(self, quiet_machine, attacker):
        gadget = MultiTargetTrainingGadget(quiet_machine, attacker, self.TARGETS)
        gadget.train()
        with pytest.raises(ValueError):
            gadget.check_entry(3)

    def test_check_entry_page_exhaustion(self, quiet_machine, attacker):
        # Stride 13 on a 64-line page: train(3) ends at line 39, so exactly
        # one check (39 -> probe 52) fits before the page runs out.
        gadget = MultiTargetTrainingGadget(quiet_machine, attacker, [(0x4013A7, 13)])
        gadget.train()
        assert gadget.check_entry(0)
        with pytest.raises(RuntimeError, match="retrain"):
            gadget.check_entry(0)

