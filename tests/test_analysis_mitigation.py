"""Tests for the analysis helpers and the §8.3 mitigation models."""

import numpy as np
import pytest

from repro.analysis.success_rate import SuccessRateReport, measure_success_rate
from repro.analysis.ttest import LEAKAGE_THRESHOLD, TVLATest, tvla_sweep
from repro.mitigation.analytical import MitigationCostModel
from repro.mitigation.champsim_lite import ChampSimLite
from repro.mitigation.study import MitigationStudy
from repro.mitigation.traces import (
    SYNTHETIC_SUITE,
    TraceSpec,
    generate_trace,
    suite_by_name,
    top_prefetch_sensitive,
)
from repro.params import COFFEE_LAKE_I7_9700


class TestSuccessRate:
    def test_measure(self):
        outcomes = iter([True, True, False, None, True])
        report = measure_success_rate("demo", lambda _i: next(outcomes), rounds=5)
        assert report.successes == 3
        assert report.failures == 1
        assert report.undecided == 1
        assert report.success_rate == pytest.approx(0.6)

    def test_summary_format(self):
        report = SuccessRateReport("x")
        report.record(True)
        assert "100.0%" in report.summary()

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError):
            SuccessRateReport("x").success_rate

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            measure_success_rate("x", lambda _i: True, rounds=0)


class TestTVLA:
    def test_accurate_timing_leaks(self):
        result = TVLATest(seed=0).run(600, accurate_timing=True)
        assert result.t_value < -LEAKAGE_THRESHOLD
        assert result.leaks

    def test_random_timing_does_not_leak(self):
        result = TVLATest(seed=1).run(600, accurate_timing=False)
        assert abs(result.t_value) < LEAKAGE_THRESHOLD

    def test_t_grows_with_traces(self):
        test = TVLATest(seed=2)
        results = tvla_sweep(test, [50, 800], accurate_timing=True)
        assert abs(results[1].t_value) > abs(results[0].t_value)

    def test_sign_is_negative(self):
        """The fixed class is chosen low-weight, so t < 0 as in Figure 16."""
        result = TVLATest(seed=3).run(400, accurate_timing=True)
        assert result.t_value < 0

    def test_minimum_traces(self):
        with pytest.raises(ValueError):
            TVLATest(seed=0).run(1, accurate_timing=True)


class TestAnalyticalModel:
    def test_paper_upper_bound(self):
        """§8.3: (24 + 300*3*24) / (100 µs * 3 GHz) < 7.3 %."""
        model = MitigationCostModel()
        assert model.cycles_per_switch == 24 + 300 * 3 * 24
        assert 7.0 < model.overhead_percent() < 7.3

    def test_scales_with_period(self):
        fast = MitigationCostModel(domain_switch_period_seconds=10e-6)
        slow = MitigationCostModel(domain_switch_period_seconds=1e-3)
        assert fast.overhead_fraction() > slow.overhead_fraction()


class TestTraces:
    def test_generate_shapes(self):
        ips, addrs = generate_trace(SYNTHETIC_SUITE[0], 5000)
        assert ips.shape == addrs.shape == (5000,)

    def test_load_fraction_respected(self):
        spec = SYNTHETIC_SUITE[0]
        _ips, addrs = generate_trace(spec, 20000, seed=1)
        observed = float(np.count_nonzero(addrs >= 0)) / addrs.size
        assert abs(observed - spec.load_fraction) < 0.02

    def test_deterministic_per_seed(self):
        a = generate_trace(SYNTHETIC_SUITE[1], 1000, seed=3)
        b = generate_trace(SYNTHETIC_SUITE[1], 1000, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_line_aligned_addresses(self):
        _ips, addrs = generate_trace(SYNTHETIC_SUITE[0], 2000)
        loads = addrs[addrs >= 0]
        assert np.all(loads % 64 == 0)

    def test_suite_lookup(self):
        assert suite_by_name("mcf-like").pointer_share > 0.5
        with pytest.raises(KeyError):
            suite_by_name("doom-like")

    def test_top8_are_streaming(self):
        for spec in top_prefetch_sensitive():
            assert spec.stream_share >= 0.8

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TraceSpec("bad", "spec2006", 1, 1, 0.0, 0.5, 0.1)
        with pytest.raises(ValueError):
            TraceSpec("bad", "spec2006", 1, 1, 0.3, 0.8, 0.3)


class TestChampSimLite:
    def test_prefetcher_speeds_up_streaming(self):
        spec = suite_by_name("libquantum-like")
        ips, addrs = generate_trace(spec, 20000)
        off = ChampSimLite(COFFEE_LAKE_I7_9700, prefetcher_enabled=False)
        on = ChampSimLite(COFFEE_LAKE_I7_9700, prefetcher_enabled=True)
        assert on.run("x", ips, addrs).ipc > 2 * off.run("x", ips, addrs).ipc

    def test_prefetcher_neutral_on_pointer_chase(self):
        spec = suite_by_name("mcf-like")
        ips, addrs = generate_trace(spec, 20000)
        off = ChampSimLite(COFFEE_LAKE_I7_9700, prefetcher_enabled=False)
        on = ChampSimLite(COFFEE_LAKE_I7_9700, prefetcher_enabled=True)
        ratio = on.run("x", ips, addrs).ipc / off.run("x", ips, addrs).ipc
        assert 0.95 < ratio < 1.1

    def test_flushing_costs_little(self):
        spec = suite_by_name("bwaves-like")
        ips, addrs = generate_trace(spec, 30000)
        base = ChampSimLite(COFFEE_LAKE_I7_9700)
        flushed = ChampSimLite(COFFEE_LAKE_I7_9700, flush_period_cycles=30_000)
        result = flushed.run("x", ips, addrs)
        overhead = 1 - result.ipc / base.run("x", ips, addrs).ipc
        assert result.flushes > 0
        assert 0 <= overhead < 0.03

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            ChampSimLite(COFFEE_LAKE_I7_9700, mlp=0)

    def test_mismatched_arrays_rejected(self):
        sim = ChampSimLite(COFFEE_LAKE_I7_9700)
        with pytest.raises(ValueError):
            sim.run("x", np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64))


class TestMitigationStudy:
    def test_section_8_3_bands(self):
        """The headline result: ~0.7 % top-8, ~0.2 % all (we assert the
        bands, not point values; see EXPERIMENTS.md)."""
        study = MitigationStudy(COFFEE_LAKE_I7_9700, n_instructions=30_000)
        results = study.run_suite()
        top8 = study.top_prefetch_sensitive(results)
        assert 0.002 < study.average_overhead(top8) < 0.015
        assert 0.0005 < study.average_overhead(results) < 0.008
        # Sensitive workloads pay more than insensitive ones.
        rest = [r for r in results if r not in top8]
        assert study.average_overhead(top8) > study.average_overhead(rest)

    def test_top8_selection_by_speedup(self):
        study = MitigationStudy(COFFEE_LAKE_I7_9700, n_instructions=20_000)
        results = study.run_suite(SYNTHETIC_SUITE[:4] + SYNTHETIC_SUITE[8:12])
        top = study.top_prefetch_sensitive(results, n=4)
        assert {r.name for r in top} == {s.name for s in SYNTHETIC_SUITE[:4]}
