"""Fixture tests for every repro.lint rule.

Each rule gets at least one *bad* snippet that must produce its finding and
one *good* snippet that must stay clean, exercised through the public
``lint_source`` API, plus JSON-rendering assertions, suppression handling,
and path-scoping checks.
"""

import json

import pytest

from repro.lint import ALL_RULES, lint_paths, lint_source, main, render_json
from repro.lint.engine import SYNTAX_RULE_ID

#: A path inside the model packages, where every rule applies.
MODEL_PATH = "src/repro/prefetch/example.py"
#: A path outside the model/core packages (analysis helpers etc.).
UTIL_PATH = "src/repro/analysis/example.py"
#: A test path (exempt from the magic-number rule).
TEST_PATH = "tests/test_example.py"


def rule_ids(findings):
    return [finding.rule for finding in findings]


def lint(source, path=MODEL_PATH):
    return lint_source(source, path)


# --------------------------------------------------------------------- #
# RL001 — stdlib random                                                  #
# --------------------------------------------------------------------- #


class TestStdlibRandom:
    def test_import_flagged(self):
        assert "RL001" in rule_ids(lint("import random\n"))

    def test_from_import_flagged(self):
        assert "RL001" in rule_ids(lint("from random import choice\n"))

    def test_seeded_numpy_clean(self):
        source = "from repro.utils.rng import make_rng\nrng = make_rng(7)\n"
        assert lint(source) == []


# --------------------------------------------------------------------- #
# RL002 — direct numpy RNG construction                                  #
# --------------------------------------------------------------------- #


class TestNumpyRng:
    def test_default_rng_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng(3)\n"
        assert "RL002" in rule_ids(lint(source))

    def test_legacy_seed_flagged(self):
        source = "import numpy as np\nnp.random.seed(3)\n"
        assert "RL002" in rule_ids(lint(source))

    def test_from_import_flagged(self):
        source = "from numpy.random import default_rng\n"
        assert "RL002" in rule_ids(lint(source))

    def test_make_rng_clean(self):
        source = "from repro.utils.rng import make_rng\nrng = make_rng(3)\n"
        assert lint(source) == []


# --------------------------------------------------------------------- #
# RL003 — wall-clock calls                                               #
# --------------------------------------------------------------------- #


class TestWallClock:
    @pytest.mark.parametrize(
        "call",
        ["time.time()", "time.perf_counter()", "time.monotonic_ns()", "time.process_time()"],
    )
    def test_time_calls_flagged(self, call):
        source = f"import time\nt = {call}\n"
        assert "RL003" in rule_ids(lint(source))

    def test_datetime_now_flagged(self):
        source = "import datetime\nnow = datetime.datetime.now()\n"
        assert "RL003" in rule_ids(lint(source))

    def test_from_time_import_flagged(self):
        assert "RL003" in rule_ids(lint("from time import perf_counter\n"))

    def test_time_sleep_clean(self):
        # Only clock *reads* are banned; the module itself is fine.
        assert lint("import time\n") == []


# --------------------------------------------------------------------- #
# RL004 — float equality                                                 #
# --------------------------------------------------------------------- #


class TestFloatEquality:
    def test_equality_flagged(self):
        source = "def f(latency):\n    return latency == 120.0\n"
        assert "RL004" in rule_ids(lint(source))

    def test_inequality_flagged(self):
        source = "def f(x):\n    return x != 0.5\n"
        assert "RL004" in rule_ids(lint(source))

    def test_assert_exempt(self):
        # Asserting an exactly-configured value is the test's point.
        assert lint("assert compute() == 9.0\n") == []

    def test_ordering_clean(self):
        assert lint("def f(x):\n    return x < 120.0\n") == []


# --------------------------------------------------------------------- #
# RL005 — cross-component private mutation                               #
# --------------------------------------------------------------------- #


class TestPrivateMutation:
    def test_foreign_store_flagged(self):
        source = "def f(tlb):\n    tlb._entries = {}\n"
        assert "RL005" in rule_ids(lint(source))

    def test_foreign_augassign_flagged(self):
        source = "def f(pf):\n    pf._occupancy += 1\n"
        assert "RL005" in rule_ids(lint(source))

    def test_foreign_subscript_flagged(self):
        source = "def f(pf):\n    pf._slots[0] = None\n"
        assert "RL005" in rule_ids(lint(source))

    def test_foreign_mutator_call_flagged(self):
        source = "def f(tlb):\n    tlb._order.append((0, 0))\n"
        assert "RL005" in rule_ids(lint(source))

    def test_self_mutation_clean(self):
        source = "class C:\n    def f(self):\n        self._state = 1\n"
        assert lint(source) == []

    def test_foreign_read_clean(self):
        source = "def f(pf):\n    return len(pf._slots)\n"
        assert lint(source) == []


# --------------------------------------------------------------------- #
# RL006 — magic paper constants                                          #
# --------------------------------------------------------------------- #


class TestMagicNumber:
    def test_page_size_flagged_anywhere(self):
        source = "def f(addr):\n    return addr // 4096\n"
        assert "RL006" in rule_ids(lint(source, path=UTIL_PATH))

    def test_stride_cap_flagged(self):
        source = "def f(stride):\n    return abs(stride) > 2048\n"
        assert "RL006" in rule_ids(lint(source, path=UTIL_PATH))

    def test_n_entries_flagged_in_core_packages(self):
        source = "def f():\n    return list(range(24))\n"
        assert "RL006" in rule_ids(lint(source, path=MODEL_PATH))

    def test_n_entries_clean_outside_core_packages(self):
        # 24 is too common a number to ban repo-wide (indices, sizes...).
        source = "def f():\n    return list(range(24))\n"
        assert lint(source, path=UTIL_PATH) == []

    def test_tests_exempt(self):
        source = "def f(addr):\n    return addr // 4096\n"
        assert lint(source, path=TEST_PATH) == []

    def test_assert_exempt(self):
        assert lint("assert size == 4096\n", path=UTIL_PATH) == []

    def test_hex_spelling_exempt(self):
        # 0x40 is deliberate address arithmetic, not CACHE_LINE_SIZE.
        source = "def f(ip):\n    return ip + 0x40\n"
        assert lint(source, path=MODEL_PATH) == []

    def test_named_constant_definition_exempt(self):
        assert lint("PAGE_SIZE = 4096\n", path=UTIL_PATH) == []


# --------------------------------------------------------------------- #
# RL007 — dataclass slots hygiene                                        #
# --------------------------------------------------------------------- #


class TestSlots:
    BAD = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class LoadEvent:\n"
        "    ip: int\n"
    )
    GOOD = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class LoadEvent:\n"
        "    ip: int\n"
    )

    def test_missing_slots_flagged_in_model_code(self):
        assert "RL007" in rule_ids(lint(self.BAD, path=MODEL_PATH))

    def test_slots_true_clean(self):
        assert lint(self.GOOD, path=MODEL_PATH) == []

    def test_rule_scoped_to_model_packages(self):
        assert lint(self.BAD, path=UTIL_PATH) == []


# --------------------------------------------------------------------- #
# RL008 — builtin hash on the seed path                                  #
# --------------------------------------------------------------------- #


class TestUnstableHash:
    def test_hash_call_flagged(self):
        source = "def f(seed, name):\n    return seed ^ hash(name)\n"
        assert "RL008" in rule_ids(lint(source))

    def test_stable_seed_clean(self):
        source = (
            "from repro.utils.rng import stable_seed\n"
            "def f(seed, name):\n"
            "    return seed ^ stable_seed(name)\n"
        )
        assert lint(source) == []


# --------------------------------------------------------------------- #
# RL009 — mutable default arguments                                      #
# --------------------------------------------------------------------- #


class TestMutableDefault:
    def test_list_literal_flagged(self):
        source = "def f(xs=[]):\n    return xs\n"
        assert "RL009" in rule_ids(lint(source))

    def test_dict_literal_flagged(self):
        source = "def f(table={}):\n    return table\n"
        assert "RL009" in rule_ids(lint(source))

    def test_constructor_call_flagged(self):
        source = "def f(xs=list()):\n    return xs\n"
        assert "RL009" in rule_ids(lint(source))

    def test_kwonly_default_flagged(self):
        source = "def f(*, xs=set()):\n    return xs\n"
        assert "RL009" in rule_ids(lint(source))

    def test_lambda_default_flagged(self):
        source = "g = lambda xs=[]: xs\n"
        assert "RL009" in rule_ids(lint(source))

    def test_comprehension_default_flagged(self):
        source = "def f(xs=[i for i in range(3)]):\n    return xs\n"
        assert "RL009" in rule_ids(lint(source))

    def test_none_sentinel_clean(self):
        source = (
            "def f(xs=None):\n"
            "    if xs is None:\n"
            "        xs = []\n"
            "    return xs\n"
        )
        assert lint(source) == []

    def test_immutable_defaults_clean(self):
        source = "def f(xs=(), name='x', n=0, mask=frozenset()):\n    return xs\n"
        assert lint(source) == []

    def test_flagged_in_tests_too(self):
        source = "def f(xs=[]):\n    return xs\n"
        assert "RL009" in rule_ids(lint(source, path=TEST_PATH))


# --------------------------------------------------------------------- #
# RL010 — assert used for input validation                               #
# --------------------------------------------------------------------- #


class TestAssertValidation:
    def test_assert_on_parameter_flagged(self):
        source = "def f(stride):\n    assert stride > 0\n    return stride\n"
        assert "RL010" in rule_ids(lint(source))

    def test_assert_on_kwonly_parameter_flagged(self):
        source = "def f(*, n_bits):\n    assert n_bits <= 8\n"
        assert "RL010" in rule_ids(lint(source))

    def test_message_names_parameter(self):
        findings = lint("def f(stride):\n    assert stride > 0\n")
        messages = [f.message for f in findings if f.rule == "RL010"]
        assert messages and "stride" in messages[0]

    def test_raise_clean(self):
        source = (
            "def f(stride):\n"
            "    if stride <= 0:\n"
            "        raise ValueError('stride must be positive')\n"
            "    return stride\n"
        )
        assert lint(source) == []

    def test_assert_on_local_clean(self):
        source = (
            "def f(label):\n"
            "    entry = lookup(label)\n"
            "    assert entry is not None\n"
            "    return entry\n"
        )
        assert lint(source) == []

    def test_assert_on_self_attribute_clean(self):
        source = (
            "class C:\n"
            "    def f(self):\n"
            "        assert self.ready\n"
        )
        assert lint(source) == []

    def test_module_level_assert_clean(self):
        assert lint("assert True\n") == []

    def test_exempt_in_tests(self):
        source = "def test_f(quiet_machine):\n    assert quiet_machine.cycles == 0\n"
        assert lint(source, path=TEST_PATH) == []

    def test_noqa_suppresses(self):
        source = "def f(stride):\n    assert stride > 0  # repro: noqa[RL010]\n"
        assert lint(source) == []


# --------------------------------------------------------------------- #
# Engine behaviour: suppression, syntax errors, JSON, CLI                #
# --------------------------------------------------------------------- #


class TestEngine:
    def test_noqa_bare_suppresses(self):
        source = "import random  # repro: noqa\n"
        assert lint(source) == []

    def test_noqa_with_matching_id_suppresses(self):
        source = "import random  # repro: noqa[RL001]\n"
        assert lint(source) == []

    def test_noqa_with_other_id_does_not_suppress(self):
        source = "import random  # repro: noqa[RL006]\n"
        assert "RL001" in rule_ids(lint(source))

    def test_syntax_error_reported_as_rl000(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == [SYNTAX_RULE_ID]

    def test_finding_has_location_and_hint(self):
        (finding,) = lint("import random\n")
        assert finding.line == 1
        assert finding.path == MODEL_PATH
        assert finding.hint

    def test_json_rendering_round_trips(self):
        findings = lint("import random\nimport numpy as np\nnp.random.default_rng(1)\n")
        payload = json.loads(render_json(findings, n_files=1))
        assert payload["files_checked"] == 1
        reported = {item["rule"] for item in payload["findings"]}
        assert {"RL001", "RL002"} <= reported
        catalogued = {item["id"] for item in payload["rules"]}
        assert catalogued == {rule.rule_id for rule in ALL_RULES}

    def test_at_least_six_distinct_rules(self):
        assert len({rule.rule_id for rule in ALL_RULES}) >= 6

    def test_lint_paths_on_fixture_tree(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "prefetch" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        (tmp_path / "src" / "repro" / "prefetch" / "good.py").write_text("x = 1\n")
        findings, n_files = lint_paths([tmp_path / "src"])
        assert n_files == 2
        assert rule_ids(findings) == ["RL001"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_cli_select_restricts_rules(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(dirty), "--select", "RL006"]) == 0
        assert main([str(dirty), "--select", "RL001"]) == 1
        capsys.readouterr()

    def test_cli_unknown_select_id_rejected(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(dirty), "--select", "RL999"]) == 2
        assert "unknown rule id(s): RL999" in capsys.readouterr().err

    def test_cli_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "RL001"


# --------------------------------------------------------------------- #
# RL011 — print() in library code                                        #
# --------------------------------------------------------------------- #


class TestPrint:
    def test_print_in_library_flagged(self):
        assert "RL011" in rule_ids(lint("print('hello')\n"))

    def test_print_in_function_flagged(self):
        source = "def f():\n    print('debug')\n"
        assert "RL011" in rule_ids(lint(source, path=UTIL_PATH))

    def test_cli_module_exempt(self):
        assert lint("print('usage')\n", path="src/repro/lint/cli.py") == []

    def test_dunder_main_exempt(self):
        assert lint("print('usage')\n", path="src/repro/lint/__main__.py") == []

    def test_tests_exempt(self):
        assert lint("print('debug')\n", path=TEST_PATH) == []

    def test_outside_repro_package_exempt(self):
        assert lint("print('demo')\n", path="examples/quickstart.py") == []

    def test_method_named_print_not_flagged(self):
        assert lint("class R:\n    def go(self, out):\n        out.print('x')\n") == []

    def test_returning_string_clean(self):
        assert lint("def render():\n    return 'hello'\n") == []


# --------------------------------------------------------------------- #
# RL012 — unregistered attack class in repro/core                        #
# --------------------------------------------------------------------- #

CORE_PATH = "src/repro/core/example.py"


class TestUnregisteredAttack:
    def test_unregistered_run_round_flagged(self):
        source = "class NovelAttack:\n    def run_round(self):\n        pass\n"
        assert "RL012" in rule_ids(lint(source, path=CORE_PATH))

    def test_each_entry_point_method_flagged(self):
        for method in ("run_round", "transmit", "recover_key_bits", "track"):
            source = f"class NovelAttack:\n    def {method}(self):\n        pass\n"
            assert "RL012" in rule_ids(lint(source, path=CORE_PATH)), method

    def test_registered_class_clean(self):
        # Variant1CrossProcess is in the `covers` of the "variant1" spec.
        source = "class Variant1CrossProcess:\n    def run_round(self):\n        pass\n"
        assert lint(source, path=CORE_PATH) == []

    def test_private_class_exempt(self):
        source = "class _Helper:\n    def run_round(self):\n        pass\n"
        assert lint(source, path=CORE_PATH) == []

    def test_victim_run_method_exempt(self):
        source = "class SomeVictim:\n    def run(self, secret):\n        pass\n"
        assert lint(source, path=CORE_PATH) == []

    def test_outside_core_exempt(self):
        source = "class NovelAttack:\n    def run_round(self):\n        pass\n"
        assert lint(source, path=UTIL_PATH) == []

    def test_noqa_suppresses(self):
        source = (
            "class NovelAttack:  # repro: noqa[RL012] - registered next PR\n"
            "    def run_round(self):\n"
            "        pass\n"
        )
        assert lint(source, path=CORE_PATH) == []

    def test_core_tree_is_clean(self):
        # The real repro/core modules must all be covered by the registry.
        import pathlib

        core = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro" / "core"
        for module in sorted(core.glob("*.py")):
            findings = lint_source(module.read_text(), f"src/repro/core/{module.name}")
            assert [f for f in findings if f.rule == "RL012"] == [], module.name


# --------------------------------------------------------------------- #
# RL013 — multiprocessing confined to the executor and campaign layers   #
# --------------------------------------------------------------------- #


class TestConfinedMultiprocessing:
    def test_plain_import_flagged(self):
        assert "RL013" in rule_ids(
            lint("import multiprocessing\n", path="src/repro/obs/runner.py")
        )

    def test_from_import_flagged(self):
        assert "RL013" in rule_ids(
            lint("from multiprocessing import Pool\n", path="src/repro/analysis/report.py")
        )

    def test_submodule_import_flagged(self):
        assert "RL013" in rule_ids(
            lint("import multiprocessing.pool\n", path="src/repro/utils/stats.py")
        )

    def test_executor_exempt(self):
        assert (
            lint("import multiprocessing\n", path="src/repro/attacks/executor.py") == []
        )

    def test_campaign_package_exempt(self):
        assert (
            lint("import multiprocessing\n", path="src/repro/campaign/runner.py") == []
        )

    def test_tests_exempt(self):
        assert lint("import multiprocessing\n", path=TEST_PATH) == []

    def test_unrelated_import_clean(self):
        assert lint("import json\n", path="src/repro/obs/runner.py") == []
