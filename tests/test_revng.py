"""Tests for the reverse-engineering microbenchmarks (paper §4).

Each test asserts the *published finding* the microbenchmark is supposed to
regenerate — these are the strongest end-to-end checks of the prefetcher
model.
"""

import pytest

from repro.params import COFFEE_LAKE_I7_9700, HASWELL_I7_4770
from repro.revng import (
    EntryCountExperiment,
    IndexingExperiment,
    PageBoundaryExperiment,
    ReplacementPolicyExperiment,
    SGXInterplayExperiment,
    StrideUpdateExperiment,
)


class TestFigure6Indexing:
    @pytest.fixture(scope="class")
    def samples(self):
        return IndexingExperiment(COFFEE_LAKE_I7_9700).run()

    def test_eight_or_more_matched_bits_trigger(self, samples):
        for sample in samples:
            assert sample.prefetched == (sample.matched_bits >= 8)

    def test_access_times_straddle_threshold(self, samples):
        threshold = COFFEE_LAKE_I7_9700.llc_hit_threshold
        for sample in samples:
            if sample.matched_bits >= 8:
                assert sample.access_time < threshold
            else:
                assert sample.access_time > threshold

    def test_no_tag_verification(self, samples):
        """Matching more than 8 bits adds nothing: there is no tag field."""
        times = {s.matched_bits: s.access_time for s in samples}
        assert abs(times[8] - times[16]) < 30

    def test_haswell_behaves_identically(self):
        samples = IndexingExperiment(HASWELL_I7_4770).run(max_bits=10)
        for sample in samples:
            assert sample.prefetched == (sample.matched_bits >= 8)


class TestFigure7StridePolicy:
    def test_figure_7a(self):
        samples = StrideUpdateExperiment(COFFEE_LAKE_I7_9700).run()
        flags = [(s.st1_triggered, s.st2_triggered) for s in samples]
        # iter 1: old stride fires; iter 2: silent; iter 3+: new stride.
        assert flags[0] == (True, False)
        assert flags[1] == (False, False)
        assert flags[2] == (False, True)
        assert flags[3] == (False, True)

    def test_figure_7b(self):
        samples = StrideUpdateExperiment(COFFEE_LAKE_I7_9700).run(offset_lines=5)
        flags = [(s.st1_triggered, s.st2_triggered) for s in samples]
        assert flags[0] == (True, False)
        assert flags[1] == (False, True)  # one step earlier than 7a

    def test_tr1_must_reach_threshold(self):
        """With tr_1 = 2 the confidence reaches the threshold exactly at the
        last training access, so phase 2 still sees a trained entry."""
        samples = StrideUpdateExperiment(COFFEE_LAKE_I7_9700).run(tr_1=3)
        assert samples[0].st1_triggered


class TestTable1PageBoundary:
    @pytest.fixture(scope="class")
    def rows(self):
        return PageBoundaryExperiment(COFFEE_LAKE_I7_9700).run()

    def test_recl_rows_all_prefetchable(self, rows):
        for row in rows:
            if row.pool == "recl":
                assert row.shares_physical_page
                assert row.prefetchable

    def test_lock_offset_1_prefetchable_via_next_page(self, rows):
        row = next(r for r in rows if r.pool == "lock" and r.virtual_page_offset == 1)
        assert not row.shares_physical_page
        assert row.prefetchable

    def test_lock_offsets_2_to_4_not_prefetchable(self, rows):
        for row in rows:
            if row.pool == "lock" and row.virtual_page_offset >= 2:
                assert not row.prefetchable

    def test_second_access_activates(self):
        assert PageBoundaryExperiment(COFFEE_LAKE_I7_9700).second_access_activates()


class TestFigure8aEntries:
    def test_26_inputs_evict_first_two(self):
        exp = EntryCountExperiment(COFFEE_LAKE_I7_9700)
        evicted = exp.evicted_inputs(exp.run(26))
        assert {1, 2} <= set(evicted)
        # One extra eviction is a probe-order re-allocation artifact.
        assert len(evicted) <= 4

    def test_30_inputs_evict_first_six(self):
        exp = EntryCountExperiment(COFFEE_LAKE_I7_9700)
        evicted = exp.evicted_inputs(exp.run(30))
        assert {1, 2, 3, 4, 5, 6} <= set(evicted)
        assert len(evicted) <= 8

    def test_24_inputs_all_survive(self):
        exp = EntryCountExperiment(COFFEE_LAKE_I7_9700)
        assert exp.evicted_inputs(exp.run(24)) == []

    def test_capacity_is_24(self):
        """#survivors == table capacity, the paper's conclusion."""
        exp = EntryCountExperiment(COFFEE_LAKE_I7_9700)
        survivors = [s for s in exp.run(30) if s.triggered]
        assert len(survivors) >= 22  # 24 minus probe artifacts


class TestFigure8bReplacement:
    def test_contiguous_eviction_window(self):
        exp = ReplacementPolicyExperiment(COFFEE_LAKE_I7_9700)
        evicted = set(exp.evicted_inputs(exp.run()))
        # The refreshed first 8 survive; the evictions start at input 9
        # and are contiguous (Bit-PLRU), not 1-8 (FIFO would evict those).
        assert evicted & set(range(1, 9)) == set()
        assert {9, 10, 11, 12, 13, 14, 15, 16} <= evicted
        assert evicted <= set(range(9, 18))  # 8 + at most one probe artifact

    def test_new_ips_survive(self):
        exp = ReplacementPolicyExperiment(COFFEE_LAKE_I7_9700)
        samples = exp.run()
        for sample in samples:
            if sample.input_index >= 25:
                assert sample.triggered


class TestSGXInterplay:
    def test_prefetched_line_survives_enclave_exit(self):
        result = SGXInterplayExperiment(COFFEE_LAKE_I7_9700).run()
        assert result.prefetched_survives_exit
        assert result.prefetched_line_latency < 50
        assert result.untouched_line_latency > 200
