"""System-level property tests (hypothesis) over the simulator.

These pin down invariants that must hold for *any* access sequence — the
guarantees the attack code silently depends on.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sgx_attack import SGXCovertChannel
from repro.cpu.machine import Machine
from repro.memsys.hierarchy import MemoryLevel
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE


def fresh_machine(seed=0):
    return Machine(COFFEE_LAKE_I7_9700.quiet(), seed=seed)


@settings(max_examples=25, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=60),
    seed=st.integers(min_value=0, max_value=10),
)
def test_inclusive_hierarchy_invariant(lines, seed):
    """L1/L2 residency implies LLC residency after any access mix."""
    machine = fresh_machine(seed)
    ctx = machine.new_thread("p")
    machine.context_switch(ctx)
    buf = machine.new_buffer(ctx.space, 4 * PAGE_SIZE)
    machine.warm_buffer_tlb(ctx, buf)
    for line in lines:
        machine.load(ctx, 0x400000 + line, buf.line_addr(line))
    hierarchy = machine.hierarchy
    for paddr in hierarchy.l1.resident_lines():
        assert hierarchy.llc_slice(paddr).contains(paddr)
    for paddr in hierarchy.l2.resident_lines():
        assert hierarchy.llc_slice(paddr).contains(paddr)


@settings(max_examples=20, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=40),
)
def test_loaded_line_is_always_cached_afterwards(lines):
    machine = fresh_machine(3)
    ctx = machine.new_thread("p")
    machine.context_switch(ctx)
    buf = machine.new_buffer(ctx.space, PAGE_SIZE)
    machine.warm_buffer_tlb(ctx, buf)
    for line in lines:
        machine.load(ctx, 0x400000, buf.line_addr(line))
        assert machine.is_cached(ctx, buf.line_addr(line))


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["load", "flush"]), st.integers(0, 63)),
        min_size=1,
        max_size=50,
    )
)
def test_clflush_always_wins(ops):
    """After a flush with no subsequent load, the line is never cached."""
    machine = fresh_machine(4)
    ctx = machine.new_thread("p")
    machine.context_switch(ctx)
    buf = machine.new_buffer(ctx.space, PAGE_SIZE)
    machine.warm_buffer_tlb(ctx, buf)
    last_op: dict[int, str] = {}
    for op, line in ops:
        if op == "load":
            machine.load(ctx, 0x400000 + line, buf.line_addr(line), fenced=True)
        else:
            machine.clflush(ctx, buf.line_addr(line))
        last_op[line] = op
    for line, op in last_op.items():
        if op == "flush":
            assert not machine.is_cached(ctx, buf.line_addr(line))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_machine_determinism(seed):
    """Identical seeds produce identical latency streams and clocks."""

    def run(seed):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=seed)
        a = machine.new_thread("a")
        b = machine.new_thread("b")
        machine.context_switch(a)
        buf = machine.new_buffer(a.space, PAGE_SIZE)
        machine.warm_buffer_tlb(a, buf)
        latencies = []
        for i in range(24):
            latencies.append(machine.load(a, 0x400000 + i, buf.line_addr(i % 64)))
            if i % 8 == 7:
                machine.context_switch(b if machine.current is a else a)
        return latencies, machine.cycles

    assert run(seed) == run(seed)


@settings(max_examples=10, deadline=None)
@given(bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=4))
def test_sgx_covert_channel_roundtrip(bits):
    machine = fresh_machine(5)
    channel = SGXCovertChannel(machine)
    assert channel.transmit(bits) == bits


def test_sgx_covert_rejects_non_bits():
    channel = SGXCovertChannel(fresh_machine(6))
    with pytest.raises(ValueError):
        channel.send_and_receive(2)


@settings(max_examples=10, deadline=None)
@given(
    n_procs=st.integers(min_value=2, max_value=5),
    rounds=st.integers(min_value=1, max_value=10),
)
def test_shared_prefetcher_entry_count_never_exceeds_capacity(n_procs, rounds):
    machine = fresh_machine(7)
    contexts = [machine.new_thread(f"p{i}") for i in range(n_procs)]
    buffers = []
    for ctx in contexts:
        machine.context_switch(ctx)
        buffers.append(machine.new_buffer(ctx.space, PAGE_SIZE))
    for r in range(rounds):
        for ctx, buf in zip(contexts, buffers):
            machine.context_switch(ctx)
            machine.warm_buffer_tlb(ctx, buf)
            machine.load(ctx, 0x400000 + r * 7 + id(ctx) % 97, buf.line_addr(r % 64))
    assert machine.ip_stride.occupancy <= machine.params.prefetcher.n_entries


@settings(max_examples=20, deadline=None)
@given(noise_sigma=st.floats(min_value=0.0, max_value=10.0))
def test_threshold_classification_robust_to_configured_noise(noise_sigma):
    """The hit/miss gap must dominate the calibrated noise levels."""
    params = dataclasses.replace(
        COFFEE_LAKE_I7_9700,
        noise=dataclasses.replace(
            COFFEE_LAKE_I7_9700.noise, timing_sigma=noise_sigma, timing_spike_prob=0.0
        ),
    )
    machine = Machine(params, seed=8)
    ctx = machine.new_thread("p")
    machine.context_switch(ctx)
    buf = machine.new_buffer(ctx.space, PAGE_SIZE)
    machine.warm_buffer_tlb(ctx, buf)
    threshold = machine.hit_threshold()
    miss = machine.load(ctx, 0x400000, buf.base, fenced=True)
    hit = machine.load(ctx, 0x400000, buf.base, fenced=True)
    assert miss >= threshold
    assert hit < threshold
