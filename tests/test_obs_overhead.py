"""Overhead and determinism guarantees of the observability layer.

Two contracts:

* **Disabled means free** — with the default :class:`NullTracer`, the hot
  path must not construct a single event object (structural test with
  raising event stubs) and a fixed covert run must stay within 5 % of the
  wall clock of a fully-traced run of the same workload (best of three
  interleaved pairs; tracing serializes thousands of events, so a
  disabled path that secretly pays the tracing cost shows up here).
* **Traced means deterministic** — two same-seed traced runs serialize to
  byte-identical JSONL.
"""

from time import perf_counter  # repro: noqa[RL003] — measuring the host is the point

import pytest

import repro.obs.events as events_mod
import repro.prefetch.ip_stride as ip_stride_mod
from repro.obs.runner import run_attack
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import Tracer

ROUNDS = 12
SEED = 7


def _covert_run(trace=None):
    return run_attack("covert", seed=SEED, rounds=ROUNDS, trace=trace)


class _Exploding:
    """Event stand-in that detonates if the disabled path constructs it."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("event constructed while tracing is disabled")


#: (module, attribute) of every event class a hook site instantiates.
_HOOK_EVENT_SITES = [
    (ip_stride_mod, "TableTransition"),
    (ip_stride_mod, "EntrySnapshot"),
    # The kernel's TracerTap, the hierarchy, the TLB and the sanitizer all
    # import their events lazily per call (after the ``tracer.enabled``
    # check), so patching the defining module covers them.
    (events_mod, "LoadTraced"),
    (events_mod, "PrefetchIssued"),
    (events_mod, "Clflush"),
    (events_mod, "ContextSwitch"),
    (events_mod, "PrefetchFill"),
    (events_mod, "TlbMiss"),
    (events_mod, "SanitizerViolation"),
    (events_mod, "SpanBegin"),
    (events_mod, "SpanEnd"),
]


class TestDisabledPath:
    def test_no_event_constructed_when_disabled(self, monkeypatch):
        for module, name in _HOOK_EVENT_SITES:
            monkeypatch.setattr(module, name, _Exploding)
        run = _covert_run(trace=None)  # NullTracer: must never touch a stub
        assert run.quality > 0.5

    def test_null_tracer_overhead_under_five_percent(self, tmp_path):
        # Interleaved pairs of (NullTracer run, fully-traced JSONL run) on
        # the fixed covert workload.  The disabled path must, in its best
        # pair, stay within 5 % of the traced run — the traced arm pays
        # per-event construction plus JSONL serialization, so this fails
        # if the disabled path starts doing tracing work.  Best-of-3
        # pairwise ratios filter scheduler noise.
        _covert_run()  # warm caches/imports outside the measurement
        ratios = []
        for i in range(3):
            start = perf_counter()
            _covert_run()
            disabled = perf_counter() - start
            tracer = Tracer([JsonlSink(str(tmp_path / f"run{i}.jsonl"))])
            start = perf_counter()
            _covert_run(trace=tracer)
            traced = perf_counter() - start
            tracer.close()
            ratios.append(disabled / traced)
        assert min(ratios) <= 1.05, f"NullTracer run slower than traced run: {ratios}"


class TestDeterminism:
    def test_same_seed_traced_runs_byte_identical(self, tmp_path):
        paths = []
        for label in ("a", "b"):
            path = tmp_path / f"run_{label}.jsonl"
            tracer = Tracer([JsonlSink(str(path))])
            _covert_run(trace=tracer)
            tracer.close()
            paths.append(path)
        first, second = (path.read_bytes() for path in paths)
        assert first == second
        assert first  # the runs actually traced something

    def test_different_seeds_diverge(self, tmp_path):
        streams = []
        for seed in (1, 2):
            path = tmp_path / f"seed_{seed}.jsonl"
            tracer = Tracer([JsonlSink(str(path))])
            run_attack("covert", seed=seed, rounds=6, trace=tracer)
            tracer.close()
            streams.append(path.read_bytes())
        assert streams[0] != streams[1]

    def test_simulated_cycles_identical_across_runs(self):
        assert _covert_run().machine.cycles == _covert_run().machine.cycles
