"""Unit tests for the flow layer's CFG builder and fixpoint solver.

Fixture programs with known control-flow shapes and known
reaching-definitions/taint facts: if the builder misroutes an edge or the
solver under-iterates, these fail with the exact fact set that went wrong.
"""

import ast
import textwrap

import pytest

from repro.lint.flow.cfg import build_cfg, unreachable_lines
from repro.lint.flow.context import FlowContext
from repro.lint.flow.solver import (
    ReachingDefinitions,
    definitions_reaching_exit,
    solve_forward,
)
from repro.lint.flow.taint import KIND_SET_ORDER, KIND_WALLCLOCK, TaintAnalysis


def cfg_of(source: str):
    return build_cfg(ast.parse(textwrap.dedent(source)).body)


def reaching(source: str) -> set:
    return set(definitions_reaching_exit(cfg_of(source)))


def taint_at_exit(source: str) -> dict:
    cfg = cfg_of(source)
    in_facts, _out = solve_forward(cfg, TaintAnalysis())
    return in_facts[cfg.exit]


def kinds_of(env: dict, name: str) -> set:
    return {kind for kind, _line in env.get(name, frozenset())}


# --------------------------------------------------------------------- #
# CFG shape                                                              #
# --------------------------------------------------------------------- #


class TestCfgShape:
    def test_straight_line_is_one_reachable_chain(self):
        cfg = cfg_of("a = 1\nb = a + 1\n")
        assert cfg.blocks[cfg.exit].reachable
        items = [item for block in cfg.reachable_blocks() for item in block.items]
        assert len(items) == 2

    def test_if_without_else_joins_both_ways(self):
        # x=1 reaches the exit both through and around the branch.
        assert reaching("x = 1\nif cond:\n    x = 3\n") == {("x", 1), ("x", 3), ("cond", 0)} - {("cond", 0)}

    def test_if_else_kills_on_both_arms(self):
        facts = reaching("x = 1\nif cond:\n    x = 3\nelse:\n    x = 5\n")
        assert ("x", 1) not in facts
        assert {("x", 3), ("x", 5)} <= facts

    def test_loop_body_definition_reaches_exit(self):
        facts = reaching("total = 0\nfor item in items:\n    total = total + item\n")
        assert {("total", 1), ("total", 3), ("item", 2)} <= facts

    def test_while_loop_reaches_fixpoint(self):
        facts = reaching("x = 1\nwhile x:\n    x = x + 1\n    y = x\n")
        assert {("x", 1), ("x", 3), ("y", 4)} <= facts

    def test_try_handler_entered_before_and_after_body(self):
        # The exception may fire between the two defs, so both (and the
        # handler's own) must reach the exit.
        facts = reaching(
            """
            try:
                x = 2
                x = 3
            except ValueError:
                y = x
            """
        )
        # The handler may run between the two defs, so the first def
        # (line 3) is live through it; normal completion leaves line 4.
        assert {("x", 3), ("x", 4), ("y", 6)} <= facts

    def test_break_and_continue_edges(self):
        facts = reaching(
            """
            while cond:
                x = 2
                if x:
                    break
                continue
            """
        )
        assert ("x", 3) in facts  # break jumps past the loop with x defined

    def test_with_body_stays_in_flow(self):
        facts = reaching("with open('f') as fh:\n    data = fh.read()\n")
        assert {("fh", 1), ("data", 2)} <= facts

    def test_match_fans_out_per_case(self):
        facts = reaching(
            """
            match value:
                case 1:
                    x = 3
                case _:
                    x = 5
            """
        )
        # No-match fall-through exists, so neither case def is guaranteed,
        # but both may reach.
        assert {("x", 4), ("x", 6)} <= facts


# --------------------------------------------------------------------- #
# Dead-branch / unreachable detection                                    #
# --------------------------------------------------------------------- #


class TestUnreachable:
    def test_if_false_branch_is_dead(self):
        cfg = cfg_of("if False:\n    x = time.time()\ny = 1\n")
        assert 2 in unreachable_lines(cfg)

    def test_if_true_else_arm_is_dead(self):
        cfg = cfg_of("if True:\n    x = 1\nelse:\n    x = 2\n")
        assert 4 in unreachable_lines(cfg)
        assert 2 not in unreachable_lines(cfg)

    def test_code_after_return_is_dead(self):
        source = "def f():\n    return 1\n    x = 2\n"
        flow = FlowContext(ast.parse(source))
        assert 3 in flow.dead_lines

    def test_code_after_while_true_is_dead(self):
        cfg = cfg_of("while True:\n    pass\nx = 1\n")
        assert 3 in unreachable_lines(cfg)

    def test_break_resurrects_code_after_while_true(self):
        cfg = cfg_of("while True:\n    break\nx = 1\n")
        assert 3 not in unreachable_lines(cfg)

    def test_live_code_is_not_dead(self):
        cfg = cfg_of("if cond:\n    x = 1\nelse:\n    x = 2\n")
        assert unreachable_lines(cfg) == set()

    def test_dead_loop_header_does_not_swallow_sibling_lines(self):
        # The dead `for` header's range must cover only the header, not
        # lines that happen to fall inside the statement's full span.
        source = "return 0\nfor item in xs:\n    use(item)\n"
        cfg = build_cfg(ast.parse(f"def f():\n{textwrap.indent(source, '    ')}").body[0].body)
        # Header (3) and body (4) are each dead via their *own* blocks;
        # the header item's range must not be the For node's full span.
        assert unreachable_lines(cfg) == {3, 4}


# --------------------------------------------------------------------- #
# Solver behaviour                                                       #
# --------------------------------------------------------------------- #


class TestSolver:
    def test_join_is_union_over_preds(self):
        cfg = cfg_of("if cond:\n    x = 2\nelse:\n    x = 4\ny = x\n")
        in_facts, _ = solve_forward(cfg, ReachingDefinitions())
        assert {("x", 2), ("x", 4)} <= set(in_facts[cfg.exit])

    def test_nonconvergence_raises_instead_of_hanging(self):
        class Diverging:
            def bottom(self):
                return 0

            def initial(self):
                return 0

            def join(self, left, right):
                return max(left, right)

            def transfer_block(self, block, fact):
                return fact + 1  # strictly increasing: never converges

        cfg = cfg_of("while cond:\n    x = 1\n")
        with pytest.raises(RuntimeError, match="did not converge"):
            solve_forward(cfg, Diverging())

    def test_unreachable_blocks_keep_bottom(self):
        cfg = cfg_of("if False:\n    x = 1\n")
        _in, out = solve_forward(cfg, ReachingDefinitions())
        dead = [b for b in cfg.blocks if not b.reachable and b.items]
        assert dead and all(out[b.index] == frozenset() for b in dead)


# --------------------------------------------------------------------- #
# Taint facts                                                            #
# --------------------------------------------------------------------- #


class TestTaintFacts:
    def test_wallclock_propagates_through_assignment_and_arithmetic(self):
        env = taint_at_exit("import time\nt = time.time()\nelapsed = t - 5\n")
        assert KIND_WALLCLOCK in kinds_of(env, "elapsed")

    def test_taint_joins_across_branches(self):
        env = taint_at_exit(
            "import time\nif cond:\n    v = time.time()\nelse:\n    v = 0\n"
        )
        assert KIND_WALLCLOCK in kinds_of(env, "v")

    def test_rebinding_clears_taint(self):
        env = taint_at_exit("import time\nv = time.time()\nv = 0\n")
        assert kinds_of(env, "v") == set()

    def test_sorted_strips_set_order(self):
        env = taint_at_exit("s = {1, 2}\nraw = list(s)\nfixed = sorted(s)\n")
        assert KIND_SET_ORDER in kinds_of(env, "raw")
        assert KIND_SET_ORDER not in kinds_of(env, "fixed")

    def test_loop_carried_taint_reaches_fixpoint(self):
        env = taint_at_exit(
            "import time\nacc = 0\nfor _ in range(3):\n    acc = acc + time.time()\n"
        )
        assert KIND_WALLCLOCK in kinds_of(env, "acc")
