"""Tests for repro.obs.metrics and the reset_stats symmetry contract."""

import json

import pytest

from repro.cpu.machine import Machine
from repro.obs.metrics import Histogram, MetricsRegistry, latency_bounds, snapshot
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE


class TestLatencyBounds:
    def test_straddles_hit_threshold(self):
        bounds = latency_bounds(COFFEE_LAKE_I7_9700)
        assert COFFEE_LAKE_I7_9700.llc_hit_threshold in bounds
        assert bounds == sorted(bounds)
        below = [b for b in bounds if b < COFFEE_LAKE_I7_9700.llc_hit_threshold]
        above = [b for b in bounds if b > COFFEE_LAKE_I7_9700.llc_hit_threshold]
        assert below and above  # cache latencies below, DRAM above


class TestHistogram:
    def test_observe_buckets_by_bound(self):
        hist = Histogram([10, 100])
        for value in (5, 10, 50, 99, 100, 101, 5000):
            hist.observe(value)
        assert hist.as_dict() == {"le:10": 2, "le:100": 3, "gt:100": 2, "total": 7}

    def test_reset(self):
        hist = Histogram([10])
        hist.observe(3)
        hist.reset()
        assert hist.total == 0
        assert hist.as_dict()["le:10"] == 0

    def test_rejects_unsorted_or_duplicate_bounds(self):
        with pytest.raises(ValueError):
            Histogram([10, 5])
        with pytest.raises(ValueError):
            Histogram([5, 5])


class TestMetricsRegistry:
    def test_set_get_contains(self):
        reg = MetricsRegistry()
        reg.set("a.count", 3)
        assert "a.count" in reg
        assert reg.get("a.count") == 3
        assert reg.names() == ["a.count"]

    def test_renderings(self):
        reg = MetricsRegistry()
        reg.set("hits", 7)
        reg.set("rate", 0.5)
        hist = Histogram([10])
        hist.observe(4)
        reg.set("lat", hist)
        text = reg.render_text()
        assert "hits" in text and "0.5000" in text and "le:10" in text
        markdown = reg.render_markdown()
        assert markdown.startswith("| metric | value |")
        assert "| hits | 7 |" in markdown
        payload = json.loads(json.dumps(reg.as_dict()))
        assert payload["lat"]["total"] == 1


def _exercised_machine(trace=None):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=11, trace=trace)
    ctx = machine.new_thread("worker")
    machine.context_switch(ctx)
    buffer = machine.new_buffer(ctx.space, 4 * PAGE_SIZE)
    for i in range(12):
        vaddr = buffer.line_addr(5 * i)
        machine.warm_tlb(ctx, vaddr)
        machine.load(ctx, 0x0040_0040, vaddr)
    machine.clflush(ctx, buffer.line_addr(0))
    return machine


#: snapshot() names that legitimately survive reset_stats (monotonic sim
#: state, not statistics).
_SURVIVES_RESET = {"machine.cycles"}


class TestSnapshot:
    def test_counters_match_components(self):
        machine = _exercised_machine()
        reg = snapshot(machine)
        assert reg.get("machine.cycles") == machine.cycles
        assert reg.get("cache.l1.misses") == machine.hierarchy.l1.misses
        assert reg.get("tlb.hits") == machine.tlb.hits
        assert reg.get("ip_stride.prefetches_issued") == machine.ip_stride.prefetches_issued
        assert reg.get("ip_stride.prefetches_issued") > 0
        assert reg.get("hierarchy.prefetch_fills") > 0

    def test_latency_histogram_populated_without_tracing(self):
        machine = _exercised_machine(trace=None)
        reg = snapshot(machine)
        assert "latency.measured" in reg
        assert reg.get("latency.measured").total > 0

    def test_accuracy_ratio(self):
        machine = _exercised_machine()
        reg = snapshot(machine)
        useful = reg.get("hierarchy.prefetch_useful")
        useless = reg.get("hierarchy.prefetch_useless")
        accuracy = reg.get("hierarchy.prefetch_accuracy")
        if useful + useless:
            assert accuracy == pytest.approx(useful / (useful + useless))

    def test_machine_metrics_method(self):
        machine = _exercised_machine()
        assert machine.metrics().as_dict() == snapshot(machine).as_dict()


class TestResetStatsSymmetry:
    def test_every_snapshot_counter_resets(self):
        """Regression: reset_stats must zero *every* statistic snapshot()
        reports — prefetch-fill counters and all prefetcher-internal
        counters included (they were historically missed)."""
        machine = _exercised_machine()
        machine.reset_stats()
        reg = snapshot(machine)
        for name, value in reg.as_dict().items():
            if name in _SURVIVES_RESET:
                continue
            if isinstance(value, dict):  # histogram
                assert value["total"] == 0, name
            else:
                assert value == 0, name

    def test_learned_state_survives_reset(self):
        machine = _exercised_machine()
        entries_before = {e.index for e in machine.ip_stride.entries()}
        cycles_before = machine.cycles
        machine.reset_stats()
        assert {e.index for e in machine.ip_stride.entries()} == entries_before
        assert machine.cycles == cycles_before

    def test_counters_recount_after_reset(self):
        machine = _exercised_machine()
        ctx = machine.current
        buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.reset_stats()
        machine.warm_tlb(ctx, buffer.base)
        machine.load(ctx, 0x0040_0999, buffer.base)
        assert machine.hierarchy.demand_accesses == 1

    def test_replacement_prefetcher_reset(self):
        from repro.defenses.tagged_prefetcher import TaggedIPStridePrefetcher

        machine = Machine(COFFEE_LAKE_I7_9700, seed=1)
        machine.ip_stride = TaggedIPStridePrefetcher(machine.params.prefetcher)
        ctx = machine.new_thread("t")
        machine.context_switch(ctx)
        buffer = machine.new_buffer(ctx.space, 2 * PAGE_SIZE)
        for i in range(6):
            vaddr = buffer.line_addr(4 * i)
            machine.warm_tlb(ctx, vaddr)
            machine.load(ctx, 0x0040_0123, vaddr)
        machine.reset_stats()  # must not raise, must zero the tagged counters
        assert machine.ip_stride.prefetches_issued == 0
        reg = snapshot(machine)
        assert reg.get("ip_stride.prefetches_issued") == 0
