"""Tests for the §8.2 defense options: each must stop the leak (or, for
the detector, demonstrably fail to see it) without breaking the owner."""

import pytest

from repro.core.gadget import TrainingGadget
from repro.core.variant1 import BranchLoadVictim, Variant1CrossProcess
from repro.cpu.machine import Machine
from repro.defenses.detector import PerformanceCounterDetector
from repro.defenses.oblivious import ObliviousBranchVictim
from repro.defenses.tagged_prefetcher import TaggedIPStridePrefetcher, harden_machine
from repro.defenses.toggles import disable_ip_stride_prefetcher
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE
from repro.utils.rng import make_rng


def quiet_machine(seed=70):
    return Machine(COFFEE_LAKE_I7_9700.quiet(), seed=seed)


class TestTaggedPrefetcher:
    def test_owner_still_gets_prefetches(self):
        machine = quiet_machine()
        harden_machine(machine)
        ctx = machine.new_thread("owner")
        machine.context_switch(ctx)
        buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, buf)
        for i in range(4):
            machine.load(ctx, 0x400010, buf.line_addr(i * 7))
        target = buf.line_addr(4 * 7 + 7)
        machine.load(ctx, 0x400010, buf.line_addr(4 * 7))
        assert machine.is_cached(ctx, target)  # legitimate prefetch intact

    def test_low_bit_aliasing_defeated(self):
        """The full-IP tag kills the masquerading gadget."""
        machine = quiet_machine(71)
        tagged = harden_machine(machine)
        ctx = machine.new_thread("attacker")
        machine.context_switch(ctx)
        buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, buf)
        for i in range(4):
            machine.load(ctx, 0x400010, buf.line_addr(i * 7))
        alias = 0x990010  # same low 8 bits, different full IP
        machine.clflush(ctx, buf.line_addr(40 + 7))
        machine.load(ctx, alias, buf.line_addr(40))
        assert not machine.is_cached(ctx, buf.line_addr(40 + 7))
        assert tagged.occupancy == 2  # two distinct entries, no sharing

    def test_cross_space_sharing_defeated(self):
        """The ASID tag isolates processes even for identical IPs."""
        machine = quiet_machine(72)
        harden_machine(machine)
        a = machine.new_thread("a")
        b = machine.new_thread("b")
        machine.context_switch(a)
        buf_a = machine.new_buffer(a.space, PAGE_SIZE)
        machine.warm_buffer_tlb(a, buf_a)
        for i in range(4):
            machine.load(a, 0x400010, buf_a.line_addr(i * 7))
        machine.context_switch(b)
        buf_b = machine.new_buffer(b.space, PAGE_SIZE)
        machine.warm_buffer_tlb(b, buf_b)
        machine.clflush(b, buf_b.line_addr(40 + 7))
        machine.load(b, 0x400010, buf_b.line_addr(40))  # same IP, other space
        assert not machine.is_cached(b, buf_b.line_addr(40 + 7))

    def test_variant1_fails_end_to_end(self):
        machine = quiet_machine(73)
        harden_machine(machine)
        attack = Variant1CrossProcess(machine)
        results = [attack.run_round(i % 2) for i in range(8)]
        assert all(r.inferred_bit is None for r in results)

    def test_duck_type_surface(self):
        tagged = TaggedIPStridePrefetcher()
        assert tagged.entry_for_ip(0x1234) is None
        tagged.clear()
        assert tagged.occupancy == 0


class TestDisabledPrefetcher:
    def test_no_prefetches_at_all(self):
        machine = quiet_machine(74)
        disable_ip_stride_prefetcher(machine)
        ctx = machine.new_thread("owner")
        machine.context_switch(ctx)
        buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, buf)
        for i in range(6):
            machine.load(ctx, 0x400010, buf.line_addr(i * 7))
        assert not machine.is_cached(ctx, buf.line_addr(6 * 7))

    def test_attack_fails(self):
        machine = quiet_machine(75)
        disable_ip_stride_prefetcher(machine)
        attack = Variant1CrossProcess(machine)
        assert attack.run_round(1).inferred_bit is None


class TestObliviousVictim:
    def test_leak_is_information_free(self):
        """Both entries are disturbed every round, whatever the secret."""
        machine = quiet_machine(76)
        space = machine.new_address_space("victim")
        vctx = machine.new_thread("victim", space)
        actx = machine.new_thread("attacker")
        machine.context_switch(actx)
        data = machine.new_buffer(space, PAGE_SIZE)
        victim = ObliviousBranchVictim(machine, vctx, data)
        gadget = TrainingGadget(machine, actx, victim.if_ip, victim.else_ip)

        observations = []
        for bit in (0, 1, 0, 1):
            machine.context_switch(actx)
            gadget.train()
            machine.context_switch(vctx)
            victim.run(bit, 20)
            machine.context_switch(actx)
            observations.append(gadget.confidences())
        # Identical observation regardless of the secret: both clobbered.
        assert len(set(observations)) == 1
        assert observations[0] == (1, 1)

    def test_leaky_victim_differs_per_secret_for_contrast(self):
        machine = quiet_machine(77)
        space = machine.new_address_space("victim")
        vctx = machine.new_thread("victim", space)
        actx = machine.new_thread("attacker")
        machine.context_switch(actx)
        data = machine.new_buffer(space, PAGE_SIZE)
        victim = BranchLoadVictim(machine, vctx, data)
        gadget = TrainingGadget(machine, actx, victim.if_ip, victim.else_ip)

        observations = []
        for bit in (0, 1):
            machine.context_switch(actx)
            gadget.train()
            machine.context_switch(vctx)
            victim.run(bit, 20)
            machine.context_switch(actx)
            observations.append(gadget.confidences())
        assert observations[0] != observations[1]

    def test_oblivious_costs_more_cycles(self):
        machine = quiet_machine(78)
        ctx = machine.new_thread("victim")
        machine.context_switch(ctx)
        data = machine.new_buffer(ctx.space, PAGE_SIZE)
        leaky = BranchLoadVictim(machine, ctx, data)
        before = machine.cycles
        leaky.run(1, 10)
        leaky_cost = machine.cycles - before

        machine2 = quiet_machine(78)
        ctx2 = machine2.new_thread("victim")
        machine2.context_switch(ctx2)
        data2 = machine2.new_buffer(ctx2.space, PAGE_SIZE)
        oblivious = ObliviousBranchVictim(machine2, ctx2, data2)
        before = machine2.cycles
        oblivious.run(1, 10)
        oblivious_cost = machine2.cycles - before
        assert oblivious_cost > leaky_cost


class TestDetector:
    def _run_attack_round(self, machine, attack, detector):
        attack.run_round(1)
        detector.poll()

    def test_realistic_sampling_cannot_separate_attack_from_benign(self):
        """§8.1: at a realistic PMU sampling period, the attack's 3-load
        training is indistinguishable from background kernel churn — no
        threshold separates the two allocation-rate distributions."""

        def allocation_rate(run_workload) -> float:
            machine = Machine(COFFEE_LAKE_I7_9700, seed=79)
            workload = run_workload(machine)
            for _ in range(3):
                workload()  # reach steady state
            detector = PerformanceCounterDetector(machine, sampling_period_cycles=300_000)
            start = machine.cycles
            for _ in range(20):
                workload()
                detector.poll()
            report = detector.finish()
            total = sum(delta for _cycles, delta in report.samples)
            return total / (machine.cycles - start) * 300_000  # allocs per sample

        def attack_workload(machine):
            attack = Variant1CrossProcess(machine)
            return lambda: attack.run_round(1)

        def benign_workload(machine):
            """Two processes ping-ponging over a shared page (an IPC app)."""
            a = machine.new_thread("a")
            b = machine.new_thread("b")
            machine.context_switch(a)
            shared = machine.new_buffer(a.space, PAGE_SIZE)
            view = machine.share_buffer(shared, b.space)

            def round_trip():
                machine.context_switch(a)
                machine.warm_buffer_tlb(a, shared)
                for i in range(64):
                    machine.load(a, 0x500000, shared.line_addr(i))
                machine.context_switch(b)
                machine.warm_buffer_tlb(b, view)
                for i in range(64):
                    machine.load(b, 0x510000, view.line_addr(i))

            return round_trip

        attack_rate = allocation_rate(attack_workload)
        benign_rate = allocation_rate(benign_workload)
        # Less than 2x apart: any threshold either misses the attack or
        # false-positives on the benign IPC workload.
        assert attack_rate < 2 * benign_rate

    def test_unrealistically_fast_sampler_would_catch_ip_search(self):
        """Churn-heavy phases (the Variant-2 IP search re-allocating 24
        entries per attempt) are visible — if you could sample that fast."""
        import numpy as np

        machine = Machine(COFFEE_LAKE_I7_9700, seed=80)
        from repro.core.variant2 import Variant2UserKernel

        rng = make_rng(80)
        attack = Variant2UserKernel(machine, secret_source=lambda: int(rng.integers(0, 2)))
        detector = PerformanceCounterDetector(
            machine, sampling_period_cycles=3_000, threshold_allocations_per_sample=20
        )
        attack.searcher._test_group(list(range(24)), demand_line=20)
        detector.poll()
        report = detector.finish()
        assert report.fired

    def test_period_validation(self):
        machine = quiet_machine(81)
        with pytest.raises(ValueError):
            PerformanceCounterDetector(machine, sampling_period_cycles=0)
