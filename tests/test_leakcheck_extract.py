"""The static victim front-end: domain, interpreter, builder, scan, CLI.

The differential check against the hand-written registry lives in
``tests/test_leakcheck_extract_differential.py``; this file covers the
machinery itself — symbolic shadows, secret-width inference, site
identity, determinism, oblivious synthesis, rejection reasons, and the
lint-shaped scan findings with their exit codes.
"""

import ast
import json

import pytest

from repro.leakcheck.analyzer import analyze
from repro.leakcheck.extract import fixtures
from repro.leakcheck.extract.builder import (
    Candidate,
    candidates,
    compile_candidate,
    compile_path,
    compile_source,
    module_info,
)
from repro.leakcheck.extract.domain import (
    AffineExpr,
    BitExpr,
    MixExpr,
    SecretExpr,
    bits_of,
    mask,
    mix,
    shift_right,
    taint_labels,
)
from repro.leakcheck.extract.interp import Interpreter, is_secret_param
from repro.leakcheck.extract.scan import (
    EXTRACT_CODES,
    render_scan_json,
    render_scan_text,
    scan_paths,
)
from repro.leakcheck.cli import main as leakcheck_main
from repro.lint.flow.callgraph import (
    closure_defs,
    function_defs,
    module_functions,
    reachable_from,
)

FIXTURE_PATH = fixtures.__file__


def compile_one(source: str):
    """Compile the sole candidate in ``source`` and return its Extraction."""
    extractions = compile_source(source, "victim.py")
    assert len(extractions) == 1, [e.qualname for e in extractions]
    return extractions[0]


# --------------------------------------------------------------------- #
# symbolic domain                                                        #
# --------------------------------------------------------------------- #


class TestDomain:
    def test_shift_then_mask_isolates_one_bit(self):
        expr = mask(shift_right(SecretExpr(0), 3), 1)
        assert expr == BitExpr(3)
        assert bits_of(expr, 8) == frozenset({3})

    def test_mask_widens_to_bit_range(self):
        expr = mask(SecretExpr(2), 0x7)
        assert bits_of(expr, 16) == frozenset({2, 3, 4})

    def test_mix_of_bits_unions(self):
        expr = mix(BitExpr(1), BitExpr(5))
        assert isinstance(expr, MixExpr)
        assert bits_of(expr, 8) == frozenset({1, 5})

    def test_unknown_mix_depends_on_all_bits(self):
        assert bits_of(MixExpr(None), 4) == frozenset({0, 1, 2, 3})

    def test_affine_preserves_dependence(self):
        expr = AffineExpr(BitExpr(2), 64, 128)
        assert bits_of(expr, 8) == frozenset({2})

    def test_taint_labels_render(self):
        assert taint_labels(mix(BitExpr(0), BitExpr(3)), 8) == {"bit0", "bit3"}
        assert taint_labels(None, 8) == frozenset()

    def test_secret_param_stems(self):
        assert is_secret_param("secret")
        assert is_secret_param("secret_bit")
        assert is_secret_param("exponent")
        assert not is_secret_param("packet_type")
        assert not is_secret_param("secretive")


# --------------------------------------------------------------------- #
# shared call graph                                                      #
# --------------------------------------------------------------------- #


CALLGRAPH_SRC = """
def worker(x):
    return helper(x)

def helper(x):
    return x + 1

class A:
    def method(self):
        return self._inner()

    def _inner(self):
        return 0

class B:
    def _inner(self):
        return 1
"""


class TestCallgraph:
    def test_module_functions_excludes_methods(self):
        tree = ast.parse(CALLGRAPH_SRC)
        assert set(module_functions(tree)) == {"worker", "helper"}

    def test_function_defs_groups_ambiguous_names(self):
        tree = ast.parse(CALLGRAPH_SRC)
        defs = function_defs(tree)
        assert len(defs["_inner"]) == 2
        assert len(defs["worker"]) == 1

    def test_reachable_from_follows_bare_calls(self):
        tree = ast.parse(CALLGRAPH_SRC)
        reached = reachable_from(module_functions(tree), {"worker": 2})
        assert set(reached) == {"worker", "helper"}
        assert reached["helper"] == ("worker", 2)

    def test_closure_defs_follows_attribute_calls(self):
        tree = ast.parse(CALLGRAPH_SRC)
        defs = function_defs(tree)
        root = defs["method"][0]
        names = [d.name for d in closure_defs(defs, root)]
        assert names[0] == "method"
        assert names.count("_inner") == 2  # both ambiguous defs included


# --------------------------------------------------------------------- #
# builder: candidates, width inference, determinism                      #
# --------------------------------------------------------------------- #


class TestBuilder:
    def test_candidates_skip_dunders_and_unhinted_params(self):
        module = module_info(
            "class V:\n"
            "    def __init__(self, secret):\n"
            "        pass\n"
            "    def handle(self, packet_type):\n"
            "        pass\n"
            "    def run(self, secret):\n"
            "        pass\n",
            "victim.py",
        )
        found = candidates(module)
        assert [c.qualname for c in found] == ["V.run"]

    def test_secret_bits_from_mask(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret):\n"
            "        row = secret & 0x3F\n"
            "        self.machine.load(self.ctx, self.ip, self.table.line_addr(row))\n"
        )
        assert extraction.error is None
        assert extraction.spec.secret_bits == 6

    def test_secret_bits_from_shift_loop(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, exponent):\n"
            "        for i in range(12):\n"
            "            bit = (exponent >> i) & 1\n"
            "            if bit:\n"
            "                self.machine.load(self.ctx, self.ip, self.buf.line_addr(i))\n"
        )
        assert extraction.spec.secret_bits == 12

    def test_pure_function_is_skipped_not_failed(self):
        extraction = compile_one(
            "def fold(secret):\n"
            "    return (secret * 3 + 1) & 0xFF\n"
        )
        assert extraction.pure
        assert extraction.spec is None
        assert extraction.error is None

    def test_branch_arm_sites_distinct_via_ip_provenance(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret_bit):\n"
            "        vaddr = self.data.line_addr(0)\n"
            "        if secret_bit:\n"
            "            self._go(self.if_ip, vaddr)\n"
            "        else:\n"
            "            self._go(self.else_ip, vaddr)\n"
            "    def _go(self, ip, vaddr):\n"
            "        self.machine.load(self.ctx, ip, vaddr)\n"
        )
        spec = extraction.spec
        assert spec.secret_bits == 1
        # One call expression, two sites: the IP argument's provenance
        # (self.if_ip vs self.else_ip) is part of site identity.
        assert len(spec.labels) == 2
        assert analyze(spec, defense="none").verdict == "leaky"

    def test_trace_fn_is_pure_and_deterministic(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret):\n"
            "        row = secret & 0x3\n"
            "        self.machine.load(self.ctx, self.ip, self.t.line_addr(row))\n"
        )
        spec = extraction.spec
        first = spec.trace(2)
        again = spec.trace(2)
        assert first == again
        assert first[0].offset == 2 * 64
        assert "bit0" in first[0].taint and "bit1" in first[0].taint

    def test_compiling_twice_gives_identical_labels(self):
        source = (
            "class V:\n"
            "    def run(self, secret):\n"
            "        row = secret % 3\n"
            "        self.machine.load(self.ctx, self.case_ips[row], self.t.line_addr(row))\n"
        )
        one = compile_one(source).spec
        two = compile_one(source).spec
        assert one.labels == two.labels
        assert one.region_pages == two.region_pages

    def test_data_param_subscript_is_a_load_site(self):
        extraction = compile_one(
            "def pick(table, secret):\n"
            "    return table[secret & 0x7]\n"
        )
        spec = extraction.spec
        assert spec is not None
        assert spec.secret_bits == 3
        assert "table" in spec.region_pages
        assert analyze(spec, defense="none").verdict == "leaky"

    def test_victim_raise_truncates_trace(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret):\n"
            "        self.machine.load(self.ctx, self.ip, self.t.line_addr(0))\n"
            "        if secret > 300:\n"
            "            raise ValueError('out of range')\n"
            "        self.machine.load(self.ctx, self.ip2, self.t.line_addr(1))\n"
        )
        assert extraction.error is None
        # 300 forces a 9-bit witness closure; secrets above 300 abort after
        # the first load, below keep both.
        spec = extraction.spec
        assert spec.secret_bits == 9
        assert len(spec.trace(0)) == 2
        assert len(spec.trace(301)) == 1

    def test_mutable_module_constant_keeps_trace_fn_pure(self):
        # STATE used to be handed out by shared reference, so probe-run
        # stores leaked into replays and trace_fn(0) drifted between calls.
        extraction = compile_one(
            "STATE = [0]\n"
            "\n"
            "class V:\n"
            "    def step(self, secret):\n"
            "        STATE[0] = STATE[0] + 1\n"
            "        vaddr = self.t.line_addr(STATE[0] + (secret & 1))\n"
            "        return self.machine.load(self.ctx, self.ip, vaddr)\n"
        )
        assert extraction.error is None
        assert extraction.spec.trace(0) == extraction.spec.trace(0)
        assert analyze(extraction.spec, defense="none").verdict == "leaky"

    def test_module_constant_counter_without_secret_dep_is_safe(self):
        # The impure-constant bug made this secret-independent counter
        # look leaky (every replay touched a new offset).
        extraction = compile_one(
            "STATE = [0]\n"
            "\n"
            "class V:\n"
            "    def step(self, secret):\n"
            "        STATE[0] = STATE[0] + 1\n"
            "        vaddr = self.t.line_addr(STATE[0])\n"
            "        return self.machine.load(self.ctx, self.ip, vaddr)\n"
        )
        assert extraction.error is None
        assert analyze(extraction.spec, defense="none").verdict == "safe"


class TestRejections:
    def test_super_is_dynamic_dispatch(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, bit):\n"
            "        super().run(bit)\n"
            "        self.machine.load(self.ctx, self.ip, self.t.line_addr(0))\n"
        )
        assert extraction.spec is None
        assert "super()" in extraction.error

    def test_ambiguous_method_name_is_dynamic_dispatch(self):
        extraction = compile_source(
            "class A:\n"
            "    def run(self, bit):\n"
            "        self._step(bit)\n"
            "    def _step(self, bit):\n"
            "        self.machine.load(self.ctx, self.ip, self.t.line_addr(0))\n"
            "class B:\n"
            "    def _step(self, bit):\n"
            "        pass\n",
            "victim.py",
        )[0]
        assert extraction.spec is None
        assert "dynamic dispatch" in extraction.error

    def test_try_except_rejected(self):
        extraction = compile_one(
            "def run(secret, t):\n"
            "    try:\n"
            "        return t[secret & 1]\n"
            "    except KeyError:\n"
            "        return 0\n"
        )
        assert extraction.spec is None
        assert "try/except" in extraction.error

    def test_runaway_loop_hits_iteration_cap(self):
        # The CFG pre-check passes (the loop *can* exit), but the concrete
        # trip count blows the interpreter's iteration cap.
        extraction = compile_one(
            "def run(secret, t):\n"
            "    i = 0\n"
            "    while i < 10 ** 9:\n"
            "        i = i + 1\n"
            "        x = t[i & 0x3]\n"
        )
        assert extraction.spec is None
        assert "budget" in extraction.error or "iteration" in extraction.error

    def test_nonterminating_cfg_rejected_before_execution(self):
        # `while True:` with no break: the CFG exit is unreachable.
        extraction = compile_one(
            "def run(secret, t):\n"
            "    while True:\n"
            "        pass\n"
        )
        assert extraction.spec is None
        assert "exit" in extraction.error

    def test_secret_dependent_trip_count_blocks_oblivious_only(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret):\n"
            "        for i in range(secret & 0x3):\n"
            "            self.machine.load(self.ctx, self.ip, self.t.line_addr(i))\n"
        )
        assert extraction.error is None
        spec = extraction.spec
        assert spec.oblivious_fn is None
        assert "trip count" in extraction.oblivious_note
        assert analyze(spec, defense="none").verdict == "leaky"
        with pytest.raises(ValueError):
            analyze(spec, defense="oblivious")


class TestObliviousSynthesis:
    def test_branch_rewrite_runs_both_arms(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret_bit):\n"
            "        vaddr = self.data.line_addr(0)\n"
            "        if secret_bit:\n"
            "            self.machine.load(self.ctx, self.if_ip, vaddr)\n"
            "        else:\n"
            "            self.machine.load(self.ctx, self.else_ip, vaddr)\n"
        )
        rewrite = extraction.spec.oblivious()
        assert rewrite is not None
        assert len(rewrite.trace(0)) == 2
        assert rewrite.trace(0) == rewrite.trace(1)
        assert analyze(extraction.spec, defense="oblivious").verdict == "safe"

    def test_tainted_address_becomes_full_sweep(self):
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret):\n"
            "        row = secret & 0x3\n"
            "        self.machine.load(self.ctx, self.ip, self.t.line_addr(row))\n"
        )
        rewrite = extraction.spec.oblivious()
        offsets = sorted({load.offset for load in rewrite.trace(0)})
        assert offsets == list(range(0, 4096, 64))
        assert analyze(extraction.spec, defense="oblivious").verdict == "safe"

    def test_early_returning_arms_are_both_traced(self):
        # A _Return from the taken arm used to skip the sandboxed arm,
        # breaking the "execute both arms" guarantee.
        extraction = compile_one(
            "class V:\n"
            "    def run(self, secret_bit):\n"
            "        if secret_bit:\n"
            "            self.machine.load(self.ctx, self.if_ip, self.t.line_addr(0))\n"
            "            return 1\n"
            "        else:\n"
            "            self.machine.load(self.ctx, self.else_ip, self.t.line_addr(1))\n"
            "            return 0\n"
        )
        rewrite = extraction.spec.oblivious()
        assert rewrite is not None, extraction.oblivious_note
        assert len(rewrite.trace(0)) == 2
        assert analyze(extraction.spec, defense="oblivious").verdict == "safe"

    def test_untaken_arm_in_place_mutation_is_discarded(self):
        # The sandbox snapshot used to be shallow: the untaken arm's
        # subscript store on a concrete list survived the restore and
        # contaminated the rest of the oblivious trace.
        module = module_info(
            "class V:\n"
            "    def run(self, secret_bit):\n"
            "        acc = [1]\n"
            "        if secret_bit:\n"
            "            acc[0] = 5\n"
            "        self.machine.load(self.ctx, self.ip, self.t.line_addr(acc[0]))\n",
            "victim.py",
        )
        candidate = candidates(module)[0]
        interp = Interpreter(
            module,
            candidate.func,
            secret_param=candidate.secret_param,
            mode="oblivious",
        )
        offsets = [load.offset for load in interp.run(0).loads]
        assert offsets == [64]  # acc[0] is still 1 after the sandboxed arm

    def test_lost_taint_downgrades_the_rewrite(self):
        # sum() drops element shadows, so the swept-address synthesis
        # misses this load; the closure diff must refuse to claim "safe
        # under oblivious" instead of shipping a false verdict.
        extraction = compile_one(
            "class V:\n"
            "    def pick(self, secret):\n"
            "        parts = [secret & 1, (secret >> 1) & 1]\n"
            "        idx = sum(parts)\n"
            "        vaddr = self.t.line_addr(idx)\n"
            "        return self.machine.load(self.ctx, self.ip, vaddr)\n"
        )
        assert extraction.error is None
        assert extraction.spec.oblivious_fn is None
        assert "diverges" in extraction.oblivious_note
        assert analyze(extraction.spec, defense="none").verdict == "leaky"

    def test_secret_chosen_config_ip_collapses_to_one_site(self):
        # The kernel-switch pattern: the IP itself is picked by the
        # secret.  The rewrite models a secret-independent instruction
        # choice (one canonical site), mirroring the hand-written
        # all-arms oblivious specs.
        extraction = compile_one(
            "class V:\n"
            "    def read(self, secret):\n"
            "        slot = secret % 4\n"
            "        vaddr = self.values.line_addr(slot)\n"
            "        self.machine.load(self.ctx, self.case_ips[slot], vaddr)\n"
        )
        rewrite = extraction.spec.oblivious()
        assert rewrite is not None, extraction.oblivious_note
        assert rewrite.trace(0) == rewrite.trace(3)
        assert analyze(extraction.spec, defense="oblivious").verdict == "safe"


# --------------------------------------------------------------------- #
# scan + CLI                                                             #
# --------------------------------------------------------------------- #


class TestScan:
    def test_fixture_positive_control(self):
        result = scan_paths([FIXTURE_PATH])
        codes = [finding.code for finding in result.findings]
        assert "EX001" in codes
        assert result.exit_code == 1
        assert result.pure == 1  # fold_bits has no loads
        ex001 = next(f for f in result.findings if f.code == "EX001")
        assert ex001.qualname == "PlantedGadgetFixture.lookup"

    def test_fixture_safe_under_every_static_defense(self):
        result = scan_paths([FIXTURE_PATH])
        row = next(
            v for v in result.victims if v.qualname == "PlantedGadgetFixture.lookup"
        )
        assert row.verdicts["none"] == "leaky"
        assert row.verdicts["tagged"] == "safe"
        assert row.verdicts["flush-on-switch"] == "safe"
        assert row.verdicts["oblivious"] == "safe"

    def test_json_payload_shape(self):
        result = scan_paths([FIXTURE_PATH])
        payload = json.loads(render_scan_json(result))
        assert payload["schema_version"] >= 2
        assert payload["mode"] == "extract-scan"
        assert payload["summary"]["leaky"] == 1
        assert set(payload["codes"]) == set(EXTRACT_CODES)
        assert payload["timings"]  # per-victim timings present

    def test_text_render_mentions_slowest_victim(self):
        result = scan_paths([FIXTURE_PATH])
        text = render_scan_text(result)
        assert "slowest victim:" in text
        assert "EX001" in text

    def test_analysis_errors_fold_into_ex003(self, monkeypatch):
        # A spec that compiles but blows up inside analyze() must become
        # a per-candidate EX003 finding, not abort (or silently pass) the
        # whole scan run.
        import repro.leakcheck.extract.scan as scan_module

        def explode(spec, defense="none"):
            raise ValueError("offset 0x1000 outside region 'table'")

        monkeypatch.setattr(scan_module, "analyze", explode)
        result = scan_paths([FIXTURE_PATH])
        assert result.exit_code == 0  # no verified EX001, no crash
        assert result.compiled == 0
        assert result.failed == 1
        assert any(
            finding.code == "EX003"
            and "analysis of the extracted spec failed" in finding.message
            for finding in result.findings
        )

    def test_scan_finds_repo_gadgets(self):
        result = scan_paths(["src/repro/core/variant1.py", "src/repro/crypto/rsa.py"])
        leaky = {f.qualname for f in result.findings if f.code == "EX001"}
        assert "BranchLoadVictim.run" in leaky
        assert "MontgomeryLadderVictim._consume_bit" in leaky
        # super() in the timing-constant override is a documented EX003.
        ex003 = {f.qualname for f in result.findings if f.code == "EX003"}
        assert "TimingConstantLadderVictim._consume_bit" in ex003


class TestCli:
    def test_extract_exit_code_and_text(self, capsys):
        rc = leakcheck_main(["--extract", FIXTURE_PATH])
        out = capsys.readouterr().out
        assert rc == 1
        assert "EX001" in out

    def test_scan_json_mode(self, capsys):
        rc = leakcheck_main(["--scan", FIXTURE_PATH, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["summary"]["candidates"] == 2

    def test_victims_and_scan_are_exclusive(self, capsys):
        rc = leakcheck_main(["branch-load", "--scan", FIXTURE_PATH])
        assert rc == 2

    def test_internal_scan_crash_exits_3(self, capsys, monkeypatch):
        # Exit 3, not 1: the Makefile/CI gates tolerate 1 ("gadgets
        # found"), so a crashed scan must not alias that code.
        import repro.leakcheck.cli as cli_module

        def explode(paths):
            raise RuntimeError("synthetic scan crash")

        monkeypatch.setattr(cli_module, "scan_paths", explode)
        rc = leakcheck_main(["--scan", FIXTURE_PATH])
        err = capsys.readouterr().err
        assert rc == 3
        assert "internal error" in err
        assert "synthetic scan crash" in err

    def test_registry_mode_reports_timings(self, capsys):
        rc = leakcheck_main(["branch-load", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["schema_version"] >= 2
        assert "branch-load" in payload["timings"]

    def test_registry_text_mode_names_slowest_victim(self, capsys):
        leakcheck_main(["branch-load", "oblivious-branch"])
        out = capsys.readouterr().out
        assert "slowest victim:" in out


def test_compile_path_matches_compile_source():
    by_path = compile_path(FIXTURE_PATH)
    with open(FIXTURE_PATH, encoding="utf-8") as handle:
        by_source = compile_source(handle.read(), FIXTURE_PATH)
    assert [e.qualname for e in by_path] == [e.qualname for e in by_source]


def test_compile_candidate_reports_position():
    module = module_info(
        "class V:\n    def run(self, secret):\n        pass\n", "victim.py"
    )
    candidate = candidates(module)[0]
    assert isinstance(candidate, Candidate)
    extraction = compile_candidate(module, candidate)
    assert extraction.path == "victim.py"
    assert extraction.line == 2
    assert extraction.secret_param == "secret"
