"""Stateful (rule-based) hypothesis test of the whole machine model.

A random interleaving of loads, flushes, TLB warms, context switches and
prefetcher clears must never violate the core invariants:

* residency: a line loaded (and not flushed since) by anyone is cached;
  a line flushed (and not loaded since) is not;
* inclusivity: private-cache residents are LLC residents;
* prefetcher occupancy never exceeds 24, indexes stay unique;
* the cycle clock is monotonic.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import settings

from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE

N_CONTEXTS = 3
N_LINES = 64


class MachineModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=99)
        self.contexts = []
        self.buffers = []
        for i in range(N_CONTEXTS):
            ctx = self.machine.new_thread(f"p{i}")
            self.machine.context_switch(ctx)
            self.contexts.append(ctx)
            self.buffers.append(self.machine.new_buffer(ctx.space, PAGE_SIZE))
        self.machine.context_switch(self.contexts[0])
        #: line-level oracle: True = must be cached, False = must not be,
        #: None = unknown (e.g. prefetches may have filled it).
        self.oracle: dict[tuple[int, int], bool] = {}
        self.last_cycles = self.machine.cycles

    # ------------------------------------------------------------------ #

    def _mark_unknown_neighbourhood(self, who: int, line: int) -> None:
        """A demand load may trigger prefetch fills nearby: drop oracle
        certainty for every other line of the same buffer."""
        for other in range(N_LINES):
            if other != line:
                self.oracle.pop((who, other), None)

    @rule(who=st.integers(0, N_CONTEXTS - 1), line=st.integers(0, N_LINES - 1),
          ip=st.integers(0, 2**20))
    def load(self, who, line, ip):
        ctx, buf = self.contexts[who], self.buffers[who]
        self.machine.context_switch(ctx)
        self.machine.warm_tlb(ctx, buf.line_addr(line))
        self.machine.load(ctx, 0x400000 + ip, buf.line_addr(line))
        self.oracle[(who, line)] = True
        self._mark_unknown_neighbourhood(who, line)

    @rule(who=st.integers(0, N_CONTEXTS - 1), line=st.integers(0, N_LINES - 1))
    def flush(self, who, line):
        ctx, buf = self.contexts[who], self.buffers[who]
        self.machine.context_switch(ctx)
        self.machine.clflush(ctx, buf.line_addr(line))
        self.oracle[(who, line)] = False

    @rule(who=st.integers(0, N_CONTEXTS - 1))
    def switch(self, who):
        self.machine.context_switch(self.contexts[who])

    @rule()
    def clear_prefetcher(self):
        self.machine.run_prefetcher_clear()

    @rule(cycles=st.integers(1, 10_000))
    def compute(self, cycles):
        self.machine.advance(cycles)

    # ------------------------------------------------------------------ #

    @invariant()
    def residency_matches_oracle(self):
        for (who, line), expected in self.oracle.items():
            ctx, buf = self.contexts[who], self.buffers[who]
            actual = self.machine.is_cached(ctx, buf.line_addr(line))
            assert actual == expected, (who, line, expected)

    @invariant()
    def hierarchy_is_inclusive(self):
        hierarchy = self.machine.hierarchy
        for paddr in hierarchy.l1.resident_lines():
            assert hierarchy.llc_slice(paddr).contains(paddr)

    @invariant()
    def prefetcher_bounded(self):
        pf = self.machine.ip_stride
        assert pf.occupancy <= 24
        indexes = [e.index for e in pf.entries()]
        assert len(indexes) == len(set(indexes))

    @invariant()
    def clock_monotonic(self):
        assert self.machine.cycles >= self.last_cycles
        self.last_cycles = self.machine.cycles


MachineModelTest = MachineModel.TestCase
MachineModelTest.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
