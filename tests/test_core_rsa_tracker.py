"""Tests for the TC-RSA key recovery (§6.2/§7.3) and load tracking (§6.3/§7.4)."""

import pytest

from repro.core.load_tracker import LoadTimingTracker, OpenSSLRSAVictim, VictimPhase
from repro.core.tc_rsa_attack import TimingConstantRSAAttack
from repro.cpu.machine import Machine
from repro.crypto.primes import generate_keypair
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.rng import make_rng

KEY = generate_keypair(64, make_rng(50))


class TestTCRSAQuiet:
    @pytest.fixture(scope="class")
    def attack(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=51)
        return TimingConstantRSAAttack(machine, KEY, sync_slip_prob=0.0)

    def test_single_pass_nearly_perfect(self, attack):
        """One pass suffices for almost every bit.  (Not necessarily *all*:
        with probability 1/8192 per one-bit, the victim's address wraps to
        exactly the trained stride in the 13-bit distance register and the
        clobber is invisible — a hardware artifact the model shares.)"""
        votes = attack.observe_pass(ciphertext=12345)
        true_bits = attack._true_bits(None)
        wrong = sum(1 for (v, _lat), t in zip(votes, true_bits) if v != t)
        assert wrong <= 2

    def test_latency_encodes_bits(self, attack):
        """Figure 14c: bit=1 -> prefetcher no longer triggered -> slow."""
        votes = attack.observe_pass(ciphertext=12345)
        true_bits = attack._true_bits(None)
        threshold = attack.machine.hit_threshold()
        agreement = sum(
            ((latency >= threshold) == bool(bit))
            for (_v, latency), bit in zip(votes, true_bits)
        )
        assert agreement >= len(true_bits) - 2

    def test_full_recovery_exact(self, attack):
        """Majority voting over passes removes the wrap artifact: the
        victim's operand addresses differ per pass, so the coincidence
        never repeats at the same bit."""
        result = attack.recover_key_bits(ciphertext=999, passes=3, max_passes=5)
        assert result.exact
        assert result.recovered_exponent == KEY.d

    def test_limited_bits(self, attack):
        result = attack.recover_key_bits(ciphertext=999, n_bits=8, passes=3, max_passes=3, margin=1)
        assert len(result.recovered_bits) == 8

    def test_victim_math_unharmed_by_observation(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=52)
        attack = TimingConstantRSAAttack(machine, KEY, sync_slip_prob=0.0)
        attack.observe_pass(ciphertext=4242)
        assert attack.victim.result() == pow(4242, KEY.d, KEY.n)


class TestTCRSANoisy:
    def test_recovery_with_slips(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=53)
        attack = TimingConstantRSAAttack(machine, KEY)
        result = attack.recover_key_bits(ciphertext=999)
        assert result.bit_errors <= 1

    def test_single_shot_success_near_paper(self):
        """§7.3: PSC single-shot success rate ≈ 82 %."""
        machine = Machine(COFFEE_LAKE_I7_9700, seed=54)
        attack = TimingConstantRSAAttack(machine, KEY)
        result = attack.recover_key_bits(ciphertext=999)
        usable = sum(len(o.votes) for o in result.observations)
        total = sum(o.attempts for o in result.observations)
        assert 0.70 <= usable / total <= 0.95

    def test_projection_matches_paper(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=55)
        attack = TimingConstantRSAAttack(machine, KEY)
        result = attack.recover_key_bits(ciphertext=999, n_bits=4)
        minutes = result.projected_minutes_for_bits(1024, 5)
        assert 150 <= minutes <= 220  # the paper reports 188 minutes

    def test_parameter_validation(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=56)
        attack = TimingConstantRSAAttack(machine, KEY)
        with pytest.raises(ValueError):
            attack.recover_key_bits(1, passes=0)
        with pytest.raises(ValueError):
            attack.recover_key_bits(1, passes=5, max_passes=3)


class TestLoadTracker:
    @pytest.fixture
    def tracked(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=57)
        victim_ctx = machine.new_thread("openssl")
        victim = OpenSSLRSAVictim(machine, victim_ctx)
        return machine, victim

    def test_key_load_event_detected(self, tracked):
        machine, victim = tracked
        tracker = LoadTimingTracker(machine, victim, target="key-load")
        samples = tracker.track()
        misses = [s.poll_index for s in samples if not s.prefetcher_triggered]
        # Exactly two misses (clobber + retraining step, Figure 15), at the
        # key-load slice and the one after it.
        assert misses == [victim.idle_slices, victim.idle_slices + 1]

    def test_decrypt_phase_detected(self, tracked):
        machine, victim = tracked
        tracker = LoadTimingTracker(machine, victim, target="decrypt")
        samples = tracker.track()
        decrypt_polls = {
            s.poll_index for s in samples if s.victim_phase is VictimPhase.DECRYPT
        }
        missed_polls = {s.poll_index for s in samples if not s.prefetcher_triggered}
        assert missed_polls  # the decryption is visible
        assert missed_polls <= decrypt_polls | {max(decrypt_polls) + 1, max(decrypt_polls) + 2}

    def test_idle_phases_quiet(self, tracked):
        machine, victim = tracked
        tracker = LoadTimingTracker(machine, victim, target="key-load")
        samples = tracker.track()
        for s in samples:
            if s.victim_phase is VictimPhase.IDLE and s.poll_index < victim.idle_slices:
                assert s.prefetcher_triggered

    def test_invalid_target(self, tracked):
        machine, victim = tracked
        with pytest.raises(ValueError):
            LoadTimingTracker(machine, victim, target="nonsense")

    def test_victim_phase_schedule(self, tracked):
        _machine, victim = tracked
        phases = [victim.phase_of_slice(i) for i in range(victim.total_slices)]
        assert phases[0] is VictimPhase.IDLE
        assert VictimPhase.KEY_LOAD in phases
        assert phases.count(VictimPhase.DECRYPT) == victim.decrypt_slices
        assert victim.phase_of_slice(victim.total_slices) is VictimPhase.DONE
