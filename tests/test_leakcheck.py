"""Tests for repro.leakcheck: abstract-table fidelity against the concrete
prefetcher, victim verdicts under the defense matrix, trace validation,
report rendering, and the CLI."""

import json

import pytest

from repro.leakcheck import analyze, get_victim, victim_names
from repro.leakcheck.analyzer import ATTACKER_CODE_BASE, canary_plan, region_bases
from repro.leakcheck.cli import main as leakcheck_main
from repro.leakcheck.report import render_json, render_text
from repro.leakcheck.table import AbstractTable
from repro.leakcheck.trace import TraceLoad, VictimSpec
from repro.memsys.hierarchy import MemoryLevel
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE, IPStrideParams
from repro.prefetch.base import LoadEvent
from repro.prefetch.ip_stride import IPStridePrefetcher
from repro.utils.bits import low_bits
from repro.utils.rng import make_rng

PARAMS = IPStrideParams()


# --------------------------------------------------------------------- #
# Abstract table vs. concrete prefetcher                                 #
# --------------------------------------------------------------------- #


def _random_stream(seed, n_events):
    """A load stream exercising aliasing, eviction, stride caps and
    page crossings."""
    rng = make_rng(seed)
    # More distinct indexes than table entries forces evictions; a couple
    # of deliberate aliases (same low byte, different high bits).
    ips = [0x40_0000 + int(o) for o in rng.integers(0, 1 << 12, 40)]
    ips.append(ips[0] + (1 << PARAMS.index_bits))
    bases = [0x100_0000 + i * 4 * PAGE_SIZE for i in range(len(ips))]
    events = []
    for _ in range(n_events):
        k = int(rng.integers(0, len(ips)))
        # Mostly small strides; occasionally a >2 KiB jump (stride cap) or
        # a page hop (boundary drop).
        offset = int(rng.integers(0, 3 * PAGE_SIZE))
        events.append((ips[k], bases[k] + offset))
    return events


class TestAbstractTableFidelity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_concrete_prefetcher(self, seed):
        concrete = IPStridePrefetcher(PARAMS)
        abstract = AbstractTable(PARAMS)
        concrete_targets = []
        for ip, paddr in _random_stream(seed, 400):
            event = LoadEvent(ip=ip, vaddr=paddr, paddr=paddr, hit_level=MemoryLevel.DRAM)
            concrete_targets.extend(r.paddr for r in concrete.observe(event, lambda v: v))
            abstract.observe(ip, paddr)
        assert [p.target for p in abstract.prefetches] == concrete_targets
        concrete_state = {
            e.index: (e.last_paddr, e.stride, e.confidence) for e in concrete.entries()
        }
        abstract_state = {
            index: (e.last_paddr, e.stride, e.confidence)
            for index, e in abstract.entries().items()
        }
        assert abstract_state == concrete_state


class TestAbstractTableSemantics:
    def _trained(self, stride_lines=3):
        table = AbstractTable(PARAMS)
        stride = stride_lines * CACHE_LINE_SIZE
        for i in range(3):
            table.observe(0x4013A7, 0x100_0000 + i * stride)
        return table, stride

    def test_training_reaches_threshold_and_issues(self):
        table, stride = self._trained()
        entry = table.entry(0xA7)
        assert entry.confidence == PARAMS.prefetch_threshold
        assert entry.stride == stride
        assert table.prefetch_targets(0xA7) == {0x100_0000 + 3 * stride}

    def test_unconditional_trigger_before_stride_compare(self):
        # The "key component": a confident entry fires at its *old* stride
        # even when the triggering load breaks the pattern.
        table, stride = self._trained()
        paddr = 0x100_0000 + 9 * stride  # off-pattern but same page
        table.observe(0x4013A7, paddr)
        assert paddr + stride in table.prefetch_targets(0xA7)
        entry = table.entry(0xA7)
        assert entry.confidence == 1  # stride rewritten, confidence reset
        assert entry.stride != stride

    def test_stride_cap_suppresses_issue(self):
        table = AbstractTable(PARAMS)
        stride = PARAMS.max_stride_bytes + CACHE_LINE_SIZE
        base = 0x100_0000
        for i in range(4):
            table.observe(0x4013A7, base + i * stride)
        assert table.entry(0xA7).confidence >= PARAMS.prefetch_threshold
        assert table.prefetch_targets(0xA7) == frozenset()

    def test_page_boundary_drop(self):
        table = AbstractTable(PARAMS)
        stride = 8 * CACHE_LINE_SIZE
        # Walk up to the end of the page: the last trigger would cross.
        base = 0x100_0000 + PAGE_SIZE - 4 * stride
        for i in range(4):
            table.observe(0x4013A7, base + i * stride)
        targets = table.prefetch_targets(0xA7)
        assert targets  # in-page triggers happened
        assert all(t // PAGE_SIZE == base // PAGE_SIZE for t in targets)

    def test_taint_accumulates_and_survives_rewrite(self):
        table, stride = self._trained()
        table.observe(0x4013A7 + (1 << PARAMS.index_bits), 0x900_0000, frozenset({"secret"}))
        entry = table.entry(0xA7)
        assert "secret" in entry.taint
        # The aliased load triggered a prefetch carrying the taint.
        assert any("secret" in p.taint for p in table.prefetches)

    def test_pretrain_rejects_zero_stride(self):
        table = AbstractTable(PARAMS)
        with pytest.raises(ValueError):
            table.pretrain(0x4013A7, 0x100_0000, 0)

    def test_pretrain_installs_saturated_untainted_entry(self):
        table = AbstractTable(PARAMS)
        table.pretrain(0x4013A7, 0x100_0000, 7 * CACHE_LINE_SIZE)
        entry = table.entry(0xA7)
        assert entry.confidence == PARAMS.confidence_max
        assert entry.stride == 7 * CACHE_LINE_SIZE
        assert entry.taint == frozenset()

    def test_capacity_eviction(self):
        table = AbstractTable(PARAMS)
        n = PARAMS.n_entries
        for k in range(n + 1):
            table.observe(0x40_0000 + k, 0x100_0000 + k * PAGE_SIZE)
        assert len(table.entries()) == n


# --------------------------------------------------------------------- #
# Victim verdicts                                                        #
# --------------------------------------------------------------------- #


class TestVictimVerdicts:
    def test_rsa_square_multiply_leaks_every_bit(self):
        report = analyze(get_victim("rsa-square-multiply").spec)
        assert report.verdict == "leaky"
        assert report.severity == "high"
        assert report.leaky_bits == tuple(range(report.secret_bits))
        a, b = report.witness
        assert bin(a ^ b).count("1") == 1  # witness secrets differ in one bit

    def test_aes_ttable_leaks(self):
        report = analyze(get_victim("aes-ttable").spec)
        assert report.verdict == "leaky"
        assert report.leaky_bits  # key bits reach the table index
        assert any("ttable_lookup" in e.labels for e in report.entries)

    def test_oblivious_branch_is_safe(self):
        report = analyze(get_victim("oblivious-branch").spec)
        assert report.verdict == "safe"
        assert report.severity == "none"
        assert report.witness is None

    def test_defenses_flip_leaky_victims_to_safe(self):
        spec = get_victim("rsa-square-multiply").spec
        for defense in ("tagged", "flush-on-switch", "oblivious"):
            report = analyze(spec, defense=defense)
            assert report.verdict == "safe", defense

    def test_tagged_keeps_entries_but_marks_unreachable(self):
        report = analyze(get_victim("branch-load").spec, defense="tagged")
        assert report.verdict == "safe"
        assert report.entries  # divergence still exists...
        assert all(not e.reachable for e in report.entries)  # ...but unreachable
        assert all(e.attacker_ip is None for e in report.entries)

    def test_attacker_ip_aliases_victim_load(self):
        report = analyze(get_victim("branch-load").spec)
        for entry in report.entries:
            assert entry.attacker_ip is not None
            assert low_bits(entry.attacker_ip, PARAMS.index_bits) == entry.index

    def test_kernel_victims_leak(self):
        for name in ("kernel-bluetooth", "kernel-battery"):
            assert analyze(get_victim(name).spec).verdict == "leaky", name

    def test_full_expected_matrix(self):
        for name in victim_names():
            registered = get_victim(name)
            for defense, expected in registered.expected.items():
                verdict = analyze(registered.spec, defense=defense).verdict
                assert verdict == expected, f"{name} under {defense}"

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError, match="unknown defense"):
            analyze(get_victim("branch-load").spec, defense="prayer")

    def test_oblivious_defense_needs_a_rewrite(self):
        spec = VictimSpec(
            name="no-rewrite",
            description="victim with no oblivious variant",
            secret_bits=1,
            labels={"load": 0x4013A7},
            region_pages={"data": 1},
            trace_fn=lambda s: [TraceLoad("load", "data", s * CACHE_LINE_SIZE)],
        )
        with pytest.raises(ValueError, match="oblivious"):
            analyze(spec, defense="oblivious")


# --------------------------------------------------------------------- #
# Trace and spec validation                                              #
# --------------------------------------------------------------------- #


def _tiny_spec(trace_fn):
    return VictimSpec(
        name="tiny",
        description="validation fixture",
        secret_bits=1,
        labels={"load": 0x4013A7},
        region_pages={"data": 1},
        trace_fn=trace_fn,
    )


class TestSpecValidation:
    def test_secret_out_of_range(self):
        spec = _tiny_spec(lambda s: [])
        with pytest.raises(ValueError):
            spec.trace(2)
        with pytest.raises(ValueError):
            spec.trace(-1)

    def test_unknown_label_rejected(self):
        spec = _tiny_spec(lambda s: [TraceLoad("mystery", "data", 0)])
        with pytest.raises(ValueError, match="mystery"):
            spec.trace(0)

    def test_unknown_region_rejected(self):
        spec = _tiny_spec(lambda s: [TraceLoad("load", "heap", 0)])
        with pytest.raises(ValueError, match="heap"):
            spec.trace(0)

    def test_offset_outside_region_rejected(self):
        spec = _tiny_spec(lambda s: [TraceLoad("load", "data", PAGE_SIZE)])
        with pytest.raises(ValueError):
            spec.trace(0)

    def test_default_taint_is_label(self):
        spec = _tiny_spec(lambda s: [TraceLoad("load", "data", 0)])
        assert spec.trace(0)[0].taint == frozenset({"load"})

    def test_default_witness_bases(self):
        spec = _tiny_spec(lambda s: [])
        assert spec.witness_bases == (0, 1)

    def test_region_bases_are_page_aligned_and_disjoint(self):
        spec = get_victim("rsa-square-multiply").spec
        bases = region_bases(spec)
        assert all(base % PAGE_SIZE == 0 for base in bases.values())
        assert len(set(bases.values())) == len(bases)

    def test_canary_plan_covers_every_victim_index(self):
        spec = get_victim("rsa-timing-constant").spec
        plan = canary_plan(spec, PARAMS)
        planned = {low_bits(train_ip, PARAMS.index_bits) for train_ip, _, _ in plan}
        assert planned == set(spec.indexes(PARAMS.index_bits))
        for train_ip, _, stride in plan:
            assert ATTACKER_CODE_BASE <= train_ip < ATTACKER_CODE_BASE + (1 << PARAMS.index_bits)
            assert 0 < stride <= PARAMS.max_stride_bytes


# --------------------------------------------------------------------- #
# Rendering and CLI                                                      #
# --------------------------------------------------------------------- #


class TestRendering:
    def test_text_report_names_entries_and_witness(self):
        report = analyze(get_victim("rsa-square-multiply").spec)
        text = render_text([report])
        assert "rsa-square-multiply" in text
        assert "leaky" in text
        assert "witness" in text
        assert "0x" in text

    def test_json_report_structure(self):
        reports = [
            analyze(get_victim("branch-load").spec),
            analyze(get_victim("oblivious-branch").spec),
        ]
        payload = json.loads(render_json(reports))
        assert payload["victims_checked"] == 2
        assert payload["leaky"] == 1
        leaky = next(r for r in payload["reports"] if r["verdict"] == "leaky")
        assert leaky["witness"] is not None
        assert leaky["entries"]


class TestLeakcheckCLI:
    def test_leaky_victim_exits_one(self, capsys):
        assert leakcheck_main(["rsa-square-multiply"]) == 1
        assert "leaky" in capsys.readouterr().out

    def test_safe_victim_exits_zero(self, capsys):
        assert leakcheck_main(["oblivious-branch"]) == 0
        assert "safe" in capsys.readouterr().out.lower()

    def test_defended_victim_exits_zero(self, capsys):
        assert leakcheck_main(["rsa-square-multiply", "--defense", "tagged"]) == 0
        capsys.readouterr()

    def test_unknown_victim_exits_two(self, capsys):
        assert leakcheck_main(["enigma"]) == 2
        assert "enigma" in capsys.readouterr().err

    def test_list_victims(self, capsys):
        assert leakcheck_main(["--list-victims"]) == 0
        out = capsys.readouterr().out
        for name in victim_names():
            assert name in out

    def test_json_format_parses(self, capsys):
        assert leakcheck_main(["branch-load", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["reports"][0]["victim"] == "branch-load"

    def test_suite_all_verdicts_expected(self, capsys):
        assert leakcheck_main(["--suite"]) == 0
        out = capsys.readouterr().out
        assert "verdicts as expected" in out


class TestRegistry:
    def test_unknown_victim_error_lists_known(self):
        with pytest.raises(ValueError) as excinfo:
            get_victim("enigma")
        assert "rsa-square-multiply" in str(excinfo.value)

    def test_every_victim_has_full_expectation_matrix(self):
        from repro.leakcheck.analyzer import DEFENSES

        for name in victim_names():
            assert set(get_victim(name).expected) == set(DEFENSES), name
