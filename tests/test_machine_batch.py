"""MachineBatch: N same-topology trials stepped through one kernel.

The batch is the NumPy-vectorization seam: these tests pin the three
properties the seam depends on — many lanes share one
:class:`~repro.cpu.kernel.core.SimKernel`, per-trial state is exposed
array-shaped, and interleaved stepping is *observably identical* to the
serial per-seed loop (same seeds → same aggregates, bit for bit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.registry import run_trials
from repro.cpu.kernel import KernelClock, MachineBatch, SimKernel, Topology, single_core
from repro.cpu.kernel.topology import CoreDescriptor
from repro.cpu.machine import Machine


def _comparable(batch):
    """Aggregate dict with host wall-clock stripped (it never reproduces)."""
    return batch.wall_clock_free_dict()


# --------------------------------------------------------------------- #
# Shared-kernel construction                                             #
# --------------------------------------------------------------------- #


def test_batch_of_32_covert_trials_shares_one_kernel() -> None:
    batch = MachineBatch.of(32, base_seed=100)
    assert batch.n_lanes == 32
    assert batch.kernel.n_lanes == 32
    assert all(machine.kernel is batch.kernel for machine in batch.machines)
    # Lane indices are distinct and dense.
    assert sorted(machine.lane for machine in batch.machines) == list(range(32))

    results = batch.run("covert", rounds=2)
    assert len(results) == 32
    assert all(result.attack == "covert" for result in results)
    assert [result.seed for result in results] == [100 + lane for lane in range(32)]
    # Every lane actually simulated work through the shared kernel.
    assert bool((batch.kernel.lane_retired() > 0).all())


def test_machines_joining_a_shared_kernel_get_distinct_lanes() -> None:
    kernel = SimKernel()
    first = Machine(seed=1, kernel=kernel)
    second = Machine(seed=2, kernel=kernel)
    assert first.kernel is kernel and second.kernel is kernel
    assert first.lane != second.lane
    # Clocks are per-lane: advancing one machine never moves the other.
    first.advance(1000)
    assert first.cycles == 1000
    assert second.cycles == 0


def test_batch_rejects_empty_and_nonpositive_sizes() -> None:
    with pytest.raises(ValueError, match="at least one seed"):
        MachineBatch([])
    with pytest.raises(ValueError, match="n_lanes must be positive"):
        MachineBatch.of(0)


# --------------------------------------------------------------------- #
# Array-shaped lane state (the vectorization seam)                       #
# --------------------------------------------------------------------- #


def test_lane_state_is_array_shaped() -> None:
    batch = MachineBatch.of(4, base_seed=11)
    batch.run("covert", rounds=2)
    state = batch.lane_state()
    assert set(state) == {
        "cycles",
        "events",
        "retired",
        "context_switches",
        "timer_interrupts",
    }
    for name, array in state.items():
        assert isinstance(array, np.ndarray), name
        assert array.dtype == np.int64, name
        assert array.shape == (4,), name
    assert bool((state["cycles"] > 0).all())
    assert bool((state["events"] >= state["retired"]).all())
    assert np.array_equal(batch.cycles(), state["cycles"])
    # The arrays agree with the per-machine scalar facade.
    assert state["cycles"].tolist() == [m.cycles for m in batch.machines]
    assert state["context_switches"].tolist() == [
        m.context_switches for m in batch.machines
    ]


# --------------------------------------------------------------------- #
# Batched == serial, bit for bit                                         #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "attack,rounds",
    [
        ("covert", 4),  # steppable: one rendezvous per step
        ("variant1", 3),  # steppable: one round per step
        ("rsa", 3),  # monolithic: exercises the sequential fallback
    ],
)
def test_batch_matches_serial_loop(attack: str, rounds: int) -> None:
    seeds = [41, 42, 43]
    batch = MachineBatch(seeds)
    batched = batch.run(attack, rounds=rounds)
    serial = [run_trials(attack, seed=seed, rounds=rounds) for seed in seeds]
    for got, want in zip(batched, serial):
        assert _comparable(got) == _comparable(want)


def test_batch_run_rejects_nonpositive_rounds() -> None:
    batch = MachineBatch.of(2)
    with pytest.raises(ValueError, match="rounds must be positive"):
        batch.run("covert", rounds=0)


# --------------------------------------------------------------------- #
# Topology descriptor                                                    #
# --------------------------------------------------------------------- #


def test_single_core_topology_defaults() -> None:
    topo = single_core()
    assert topo.n_cores == 1
    assert topo.shared_llc is True
    assert topo.cores[0].name == "core0"
    assert SimKernel().topology == topo


def test_topology_validation() -> None:
    with pytest.raises(ValueError, match="at least one core"):
        Topology(cores=())
    with pytest.raises(ValueError, match="duplicate core names"):
        Topology(cores=(CoreDescriptor(name="a"), CoreDescriptor(name="a")))
    topo = Topology(
        cores=(CoreDescriptor(name="big"), CoreDescriptor(name="little")),
        shared_llc=False,
    )
    assert topo.n_cores == 2
    batch = MachineBatch.of(2, topology=topo)
    assert batch.kernel.topology is topo


def test_kernel_lane_clocks_are_independent() -> None:
    kernel = SimKernel()
    a = kernel.add_lane(KernelClock())
    b = kernel.add_lane(KernelClock())
    kernel.clock_of(a).advance(7)
    assert kernel.clock_of(a).cycles == 7
    assert kernel.clock_of(b).cycles == 0
    assert kernel.lane_cycles().tolist() == [7, 0]
