"""Tests for the secret-extraction channels."""

import pytest

from repro.channels.eviction_sets import EvictionSetBuilder, search_eviction_set
from repro.channels.flush_flush import FLUSH_THRESHOLD, FlushFlush
from repro.channels.flush_reload import FlushReload
from repro.channels.prime_probe import PrimeProbe
from repro.channels.psc import PrefetcherStatusCheck
from repro.channels.thresholds import classify_hit
from repro.mmu.buffer import Buffer
from repro.params import PAGE_SIZE


@pytest.fixture
def setup(quiet_machine):
    ctx = quiet_machine.new_thread("attacker")
    quiet_machine.context_switch(ctx)
    shared = quiet_machine.new_buffer(ctx.space, PAGE_SIZE, name="shared")
    quiet_machine.warm_buffer_tlb(ctx, shared)
    return quiet_machine, ctx, shared


class TestClassifyHit:
    def test_threshold(self):
        assert classify_hit(50, 120)
        assert not classify_hit(120, 120)
        assert not classify_hit(250, 120)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            classify_hit(0, 120)


class TestFlushReload:
    def test_untouched_lines_miss(self, setup):
        machine, ctx, shared = setup
        fr = FlushReload(machine, ctx, shared, reload_ip=0x700000)
        fr.flush()
        assert fr.hit_lines() == []

    def test_touched_line_hits(self, setup):
        machine, ctx, shared = setup
        fr = FlushReload(machine, ctx, shared, reload_ip=0x700000)
        fr.flush()
        machine.load(ctx, 0x400044, shared.line_addr(17))
        hits = set(fr.hit_lines())
        assert 17 in hits
        # Only the demand line and (possibly) its adjacent-prefetch buddy.
        assert hits <= {16, 17}

    def test_reload_is_destructive_but_repeatable(self, setup):
        machine, ctx, shared = setup
        fr = FlushReload(machine, ctx, shared, reload_ip=0x700000)
        fr.flush()
        machine.load(ctx, 0x400044, shared.line_addr(9))
        fr.reload()
        # Second reload without flush: everything now hits.
        assert len(fr.hit_lines()) == shared.n_lines

    def test_page_scoped_flush_and_reload(self, quiet_machine):
        ctx = quiet_machine.new_thread("attacker")
        quiet_machine.context_switch(ctx)
        shared = quiet_machine.new_buffer(ctx.space, 2 * PAGE_SIZE)
        quiet_machine.warm_buffer_tlb(ctx, shared)
        fr = FlushReload(quiet_machine, ctx, shared, reload_ip=0x700000)
        fr.flush(page=1)
        quiet_machine.load(ctx, 0x400044, shared.page_line_addr(1, 5))
        hits = fr.hit_lines(page=1)
        assert 64 + 5 in hits

    def test_reload_ip_must_not_alias_monitored_entries(self, setup):
        machine, ctx, shared = setup
        with pytest.raises(ValueError):
            FlushReload(machine, ctx, shared, reload_ip=0x7000AB, avoid_ip_indexes={0xAB})

    def test_reload_does_not_disturb_prefetcher(self, setup):
        machine, ctx, shared = setup
        fr = FlushReload(machine, ctx, shared, reload_ip=0x700000)
        train = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, train)
        for i in range(4):
            machine.load(ctx, 0x400020, train.line_addr(i * 7))
        entry_before = machine.ip_stride.entry_for_ip(0x400020)
        state = (entry_before.stride, entry_before.confidence, entry_before.last_paddr)
        fr.reload()
        entry_after = machine.ip_stride.entry_for_ip(0x400020)
        assert (entry_after.stride, entry_after.confidence, entry_after.last_paddr) == state


class TestEvictionSets:
    def test_build_minimal_set(self, setup):
        machine, ctx, shared = setup
        builder = EvictionSetBuilder(machine, ctx)
        es = builder.build_for_address(ctx, shared.line_addr(0))
        assert len(es) == machine.params.llc.ways
        target = machine.hierarchy.llc_set_index(ctx.space.translate(shared.line_addr(0)))
        for vaddr in es.addresses:
            assert machine.hierarchy.llc_set_index(ctx.space.translate(vaddr)) == target

    def test_minimal_set_evicts_target(self, setup):
        machine, ctx, shared = setup
        builder = EvictionSetBuilder(machine, ctx)
        target = shared.line_addr(0)
        es = builder.build_for_address(ctx, target)
        machine.load(ctx, 0x700000, target)
        for vaddr in es.addresses:
            machine.warm_tlb(ctx, vaddr)
            machine.load(ctx, 0x700008, vaddr, fenced=True)
        assert not machine.is_cached(ctx, target)

    def test_pool_too_small_raises(self, setup):
        machine, ctx, shared = setup
        builder = EvictionSetBuilder(machine, ctx, pool_pages=64)
        with pytest.raises(RuntimeError):
            builder.build_for_address(ctx, shared.line_addr(0))

    def test_search_based_eviction_set(self, setup):
        """The timing-only (no-pagemap) builder finds a working set."""
        machine, ctx, shared = setup
        pool = Buffer(ctx.space.mmap(8192 * PAGE_SIZE, locked=True, name="pool"))
        machine.warm_buffer_tlb(ctx, pool)
        target = shared.line_addr(3)
        found = search_eviction_set(machine, ctx, target, pool, probe_ip=0x710000)
        machine.load(ctx, 0x700000, target)
        for vaddr in found:
            machine.load(ctx, 0x700008, vaddr, fenced=True)
        assert not machine.is_cached(ctx, target)


class TestPrimeProbe:
    def test_probe_requires_prime(self, setup):
        machine, ctx, shared = setup
        builder = EvictionSetBuilder(machine, ctx)
        pp = PrimeProbe(machine, ctx, [builder.build_for_address(ctx, shared.base)], 0x700000)
        with pytest.raises(RuntimeError):
            pp.probe()

    def test_idle_set_low_delta(self, setup):
        machine, ctx, shared = setup
        builder = EvictionSetBuilder(machine, ctx)
        es = builder.build_for_address(ctx, shared.base)
        for vaddr in es.addresses:
            machine.warm_tlb(ctx, vaddr)
        pp = PrimeProbe(machine, ctx, [es], 0x700000)
        pp.prime()
        samples = pp.probe()
        assert abs(samples[0].delta) < 100

    def test_victim_access_visible(self, setup):
        machine, ctx, shared = setup
        builder = EvictionSetBuilder(machine, ctx)
        es = builder.build_for_address(ctx, shared.base)
        for vaddr in es.addresses:
            machine.warm_tlb(ctx, vaddr)
        pp = PrimeProbe(machine, ctx, [es], 0x700000)
        pp.prime()
        machine.load(ctx, 0x400077, shared.base)  # the "victim"
        samples = pp.probe()
        assert samples[0].delta > 500

    def test_empty_sets_rejected(self, setup):
        machine, ctx, _shared = setup
        with pytest.raises(ValueError):
            PrimeProbe(machine, ctx, [], 0x700000)


class TestFlushFlush:
    def test_cached_line_flushes_slower(self, setup):
        machine, ctx, shared = setup
        ff = FlushFlush(machine, ctx, shared)
        machine.load(ctx, 0x400044, shared.line_addr(4))
        cached_sample = ff.flush_timed(4)
        uncached_sample = ff.flush_timed(4)  # now flushed out
        assert cached_sample.latency > uncached_sample.latency
        assert cached_sample.was_cached
        assert not uncached_sample.was_cached

    def test_threshold_separates(self):
        from repro.channels.flush_flush import FLUSH_HIT_CYCLES, FLUSH_MISS_CYCLES

        assert FLUSH_MISS_CYCLES < FLUSH_THRESHOLD < FLUSH_HIT_CYCLES


class TestPSC:
    def _make(self, machine, ctx, stride=7):
        buffer = machine.new_buffer(ctx.space, 8 * PAGE_SIZE, name="psc")
        train_ip = 0x680044
        return PrefetcherStatusCheck(machine, ctx, train_ip, buffer, stride)

    def test_undisturbed_checks_all_hit(self, setup):
        machine, ctx, _ = setup
        psc = self._make(machine, ctx)
        psc.train()
        for _ in range(20):
            assert psc.check().prefetcher_triggered

    def test_victim_execution_detected(self, setup):
        machine, ctx, _ = setup
        psc = self._make(machine, ctx)
        psc.train()
        assert psc.check().prefetcher_triggered
        # Victim load at an aliasing IP from an unrelated address.
        victim_buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_tlb(ctx, victim_buf.base)
        machine.load(ctx, 0x990044, victim_buf.base)
        observation = psc.check()
        assert observation.victim_executed

    def test_two_misses_then_recovery(self, setup):
        """§7.4 / Figure 15: one more retraining step is needed."""
        machine, ctx, _ = setup
        psc = self._make(machine, ctx)
        psc.train()
        victim_buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_tlb(ctx, victim_buf.base)
        machine.load(ctx, 0x990044, victim_buf.base)
        results = [psc.check().prefetcher_triggered for _ in range(4)]
        assert results == [False, False, True, True]

    def test_progression_survives_page_crossings(self, setup):
        machine, ctx, _ = setup
        psc = self._make(machine, ctx, stride=11)
        psc.train()
        # Enough checks to cross several pages and wrap the buffer.
        assert all(psc.check().prefetcher_triggered for _ in range(64))

    def test_probe_ip_must_not_alias(self, setup):
        machine, ctx, _ = setup
        buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
        with pytest.raises(ValueError):
            PrefetcherStatusCheck(machine, ctx, 0x680044, buffer, 7, probe_ip=0x790044)

    def test_invalid_stride_rejected(self, setup):
        machine, ctx, _ = setup
        buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
        with pytest.raises(ValueError):
            PrefetcherStatusCheck(machine, ctx, 0x680044, buffer, 0)

    def test_train_needs_three_iterations(self, setup):
        machine, ctx, _ = setup
        psc = self._make(machine, ctx)
        with pytest.raises(ValueError):
            psc.train(iterations=2)

    def test_large_stride_rejected(self, setup):
        """A stride that cannot fit a retrain + check in one page would
        run the progression off the buffer; the constructor refuses."""
        machine, ctx, _ = setup
        buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
        with pytest.raises(ValueError):
            PrefetcherStatusCheck(machine, ctx, 0x680044, buffer, 31)

    def test_max_safe_stride_works(self, setup):
        machine, ctx, _ = setup
        buffer = machine.new_buffer(ctx.space, 4 * PAGE_SIZE)
        psc = PrefetcherStatusCheck(machine, ctx, 0x680044, buffer, 15)
        psc.train()
        assert all(psc.check().prefetcher_triggered for _ in range(16))
