"""Regression tests for the shared address-arithmetic helpers.

Each helper in :mod:`repro.memsys.addr` replaced an inline formula that was
re-derived in ``cpu/machine.py``, the four prefetchers, ``memsys/cache.py``,
and ``mmu/tlb.py``.  These tests pin every helper against the original
expression so the dedupe cannot silently change semantics.
"""

from __future__ import annotations

import pytest

from repro.memsys import addr
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE

# A spread of addresses: zero, line/page boundaries, mid-line, mid-page,
# large, and a couple of adversarial near-boundary values.
ADDRS = [
    0,
    1,
    CACHE_LINE_SIZE - 1,
    CACHE_LINE_SIZE,
    CACHE_LINE_SIZE + 7,
    PAGE_SIZE - 1,
    PAGE_SIZE,
    PAGE_SIZE + CACHE_LINE_SIZE,
    3 * PAGE_SIZE + 5 * CACHE_LINE_SIZE + 13,
    0x7FFF_FFFF_F000,
    0x7FFF_FFFF_FFFF,
]


@pytest.mark.parametrize("paddr", ADDRS)
def test_line_index_matches_inline_formula(paddr: int) -> None:
    assert addr.line_index(paddr) == paddr // CACHE_LINE_SIZE


@pytest.mark.parametrize("paddr", ADDRS)
def test_line_base_matches_inline_formula(paddr: int) -> None:
    assert addr.line_base(paddr) == (paddr // CACHE_LINE_SIZE) * CACHE_LINE_SIZE


@pytest.mark.parametrize("line", [0, 1, 63, 64, 12345])
def test_line_addr_matches_inline_formula(line: int) -> None:
    assert addr.line_addr(line) == line * CACHE_LINE_SIZE


@pytest.mark.parametrize("paddr", ADDRS)
def test_page_frame_matches_inline_formula(paddr: int) -> None:
    assert addr.page_frame(paddr) == paddr // PAGE_SIZE


@pytest.mark.parametrize("vaddr", ADDRS)
def test_page_split_matches_divmod(vaddr: int) -> None:
    assert addr.page_split(vaddr) == divmod(vaddr, PAGE_SIZE)


def test_same_page_matches_frame_comparison() -> None:
    for a in ADDRS:
        for b in ADDRS:
            assert addr.same_page(a, b) == (a // PAGE_SIZE == b // PAGE_SIZE)


def test_same_page_handles_negative_targets() -> None:
    # ip-stride's page-cross drop and the streamer's bounds check both rely
    # on Python floor division for negative prefetch targets: -1 lives in
    # frame -1, never frame 0.
    assert not addr.same_page(-1, 0)
    assert addr.page_frame(-1) == -1
    assert addr.line_addr(-1) == -CACHE_LINE_SIZE


def test_same_block_matches_adjacent_prefetcher_formula() -> None:
    block = 128
    for a in ADDRS:
        pair = addr.line_base(a) ^ CACHE_LINE_SIZE
        assert addr.same_block(pair, addr.line_base(a), block) == (
            pair // block == addr.line_base(a) // block
        )


@pytest.mark.parametrize("line_size,n_sets", [(64, 64), (64, 1024), (32, 16)])
def test_set_index_and_tag_match_cache_formulas(line_size: int, n_sets: int) -> None:
    for paddr in ADDRS:
        line = paddr // line_size
        assert addr.set_index(paddr, line_size, n_sets) == line % n_sets
        assert addr.cache_tag(paddr, line_size, n_sets) == line // n_sets


@pytest.mark.parametrize("line_size,n_sets", [(64, 64), (64, 1024), (32, 16)])
def test_tag_round_trips_to_line_base(line_size: int, n_sets: int) -> None:
    for paddr in ADDRS:
        index = addr.set_index(paddr, line_size, n_sets)
        tag = addr.cache_tag(paddr, line_size, n_sets)
        assert addr.tag_to_line_base(tag, index, line_size, n_sets) == addr.line_base(
            paddr, line_size
        )
