"""Tests for the flow rules RL014–RL019 and the flow-aware upgrades.

Each fixture is a small program with a *known* dataflow fact — a taint
that must reach a sink, a worker that must reach a global — plus the
matching negative fixture where the flow is broken (rebinding, sorted(),
local shadowing) and no finding may fire.  A parametrized property test
then asserts every flow rule goes through the same noqa-suppression and
JSON-rendering machinery as the syntactic rules.
"""

import json

import pytest

from repro.lint.engine import lint_source, render_json

#: Non-test paths the flow rules' applies_to accepts.
ATTACKS_PATH = "src/repro/attacks/example.py"
CORE_PATH = "src/repro/core/example.py"
TEST_PATH = "tests/test_example.py"


def lint(source: str, path: str = ATTACKS_PATH, flow: bool = True):
    return lint_source(source, path, flow=flow)


def rule_ids(findings) -> list[str]:
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------- #
# RL014 — determinism taint into Trial/TrialBatch/trace payloads         #
# --------------------------------------------------------------------- #

#: The ISSUE's acceptance fixture: an unseeded-RNG draw flowing into a
#: Trial field through an intermediate variable.
UNSEEDED_RNG_INTO_TRIAL = '''
import numpy as np
from repro.attacks.trial import Trial

def run_one():
    rng = np.random.default_rng()  # repro: noqa[RL002]
    outcome = int(rng.integers(0, 2))
    return Trial(attack="covert", machine="i7", seed=1, params={},
                 duration_cycles=10, outcome={"bit": outcome})
'''


class TestDeterminismTrialTaint:
    def test_unseeded_rng_draw_reaching_trial_is_flagged(self):
        assert "RL014" in rule_ids(lint(UNSEEDED_RNG_INTO_TRIAL))

    def test_flow_off_disables_the_rule(self):
        assert "RL014" not in rule_ids(lint(UNSEEDED_RNG_INTO_TRIAL, flow=False))

    def test_wallclock_through_arithmetic_into_trialbatch(self):
        source = (
            "import time\n"
            "def run():\n"
            "    t0 = time.time()  # repro: noqa[RL003]\n"
            "    elapsed = time.time() - t0  # repro: noqa[RL003]\n"
            "    return TrialBatch(trials=[], wall=elapsed)\n"
        )
        assert "RL014" in rule_ids(lint(source))

    def test_set_iteration_order_into_trace_emit(self):
        source = (
            "def emit_all(tracer, names):\n"
            "    order = list({n for n in names})\n"
            "    tracer.emit(order)\n"
        )
        assert "RL014" in rule_ids(lint(source))

    def test_sorted_launders_set_order(self):
        source = (
            "def emit_all(tracer, names):\n"
            "    order = sorted({n for n in names})\n"
            "    tracer.emit(order)\n"
        )
        assert "RL014" not in rule_ids(lint(source))

    def test_rebinding_with_clean_value_clears_the_taint(self):
        source = (
            "import time\n"
            "def run():\n"
            "    v = time.time()  # repro: noqa[RL003]\n"
            "    v = 0\n"
            "    return Trial(attack='x', machine='m', seed=1, params={},\n"
            "                 duration_cycles=v, outcome={})\n"
        )
        assert "RL014" not in rule_ids(lint(source))

    def test_taint_inside_comprehension_building_trials(self):
        source = (
            "import numpy as np\n"
            "def run(n):\n"
            "    draws = np.random.default_rng().integers(0, 2, n)  # repro: noqa[RL002]\n"
            "    return [Trial(attack='x', machine='m', seed=1, params={},\n"
            "                  duration_cycles=1, outcome={'bit': d}) for d in draws]\n"
        )
        assert "RL014" in rule_ids(lint(source))

    def test_seeded_rng_is_clean(self):
        source = (
            "from repro.utils.rng import make_rng\n"
            "def run(seed):\n"
            "    rng = make_rng(seed)\n"
            "    return Trial(attack='x', machine='m', seed=seed, params={},\n"
            "                 duration_cycles=1, outcome={'bit': int(rng.integers(0, 2))})\n"
        )
        assert "RL014" not in rule_ids(lint(source))

    def test_rule_does_not_run_on_tests(self):
        assert "RL014" not in rule_ids(lint(UNSEEDED_RNG_INTO_TRIAL, path=TEST_PATH))


# --------------------------------------------------------------------- #
# RL015 — determinism taint into seed / content-hash inputs              #
# --------------------------------------------------------------------- #


class TestSeedTaint:
    def test_wallclock_into_make_rng(self):
        source = (
            "import time\n"
            "from repro.utils.rng import make_rng\n"
            "def go():\n"
            "    s = int(time.time())  # repro: noqa[RL003]\n"
            "    return make_rng(s)\n"
        )
        assert "RL015" in rule_ids(lint(source))

    def test_id_into_seed_keyword(self):
        source = (
            "def go(obj, machine):\n"
            "    return machine.reset(seed=id(obj))\n"
        )
        assert "RL015" in rule_ids(lint(source))

    def test_os_entropy_into_hashlib(self):
        source = (
            "import hashlib\n"
            "import os\n"
            "def key():\n"
            "    return hashlib.sha256(os.urandom(8)).hexdigest()\n"
        )
        assert "RL015" in rule_ids(lint(source))

    def test_declared_coordinates_are_clean(self):
        source = (
            "from repro.utils.rng import stable_seed\n"
            "def go(attack, machine):\n"
            "    return stable_seed(f'{attack}:{machine}')\n"
        )
        assert "RL015" not in rule_ids(lint(source))


# --------------------------------------------------------------------- #
# RL016 — worker callables reaching module-level mutable globals         #
# --------------------------------------------------------------------- #

#: The ISSUE's acceptance fixture: a dispatched worker mutating a
#: module-level mutable global.
WORKER_MUTATES_GLOBAL = '''
_RESULTS = []

def worker(task):
    _RESULTS.append(task.key)
    return task.key

def run_all(pool, tasks):
    return pool.map(worker, tasks)
'''


class TestWorkerSharedGlobal:
    def test_worker_mutating_module_global_is_flagged(self):
        assert "RL016" in rule_ids(lint(WORKER_MUTATES_GLOBAL))

    def test_undispatched_function_is_not_flagged(self):
        source = "_RESULTS = []\n\ndef helper(task):\n    _RESULTS.append(task.key)\n"
        assert "RL016" not in rule_ids(lint(source))

    def test_reached_through_module_local_call_graph(self):
        source = (
            "_CACHE = {}\n"
            "def record(key):\n"
            "    _CACHE[key] = True\n"
            "def worker(task):\n"
            "    return record(task.key)\n"
            "def run_all(executor, tasks):\n"
            "    return executor.map(worker, tasks)\n"
        )
        assert "RL016" in rule_ids(lint(source))

    def test_partial_wrapped_worker_is_resolved(self):
        source = (
            "from functools import partial\n"
            "_SEEN = set()\n"
            "def worker(cfg, task):\n"
            "    _SEEN.add(task.key)\n"
            "def run_all(pool, tasks, cfg):\n"
            "    return pool.map(partial(worker, cfg), tasks)\n"
        )
        assert "RL016" in rule_ids(lint(source))

    def test_run_cell_fn_keyword_dispatch(self):
        source = (
            "_SEEN = {}\n"
            "def cell_fn(cell):\n"
            "    _SEEN[cell.key] = 1\n"
            "def launch(runner_cls):\n"
            "    return runner_cls(jobs=2, run_cell_fn=cell_fn)\n"
        )
        assert "RL016" in rule_ids(lint(source))

    def test_local_shadowing_is_not_a_global_access(self):
        source = (
            "_RESULTS = []\n"
            "def worker(task):\n"
            "    _RESULTS = []\n"
            "    _RESULTS.append(task.key)\n"
            "    return _RESULTS\n"
            "def run_all(pool, tasks):\n"
            "    return pool.map(worker, tasks)\n"
        )
        assert "RL016" not in rule_ids(lint(source))

    def test_read_only_registry_read_by_worker_is_clean(self):
        # A module-level dict built at import time and never mutated from
        # functions is the sanctioned registry pattern.
        source = (
            "_REGISTRY = {'covert': 1}\n"
            "def worker(task):\n"
            "    return _REGISTRY[task.attack]\n"
            "def run_all(pool, tasks):\n"
            "    return pool.map(worker, tasks)\n"
        )
        assert "RL016" not in rule_ids(lint(source))

    def test_worker_read_of_runtime_mutated_global_is_flagged(self):
        source = (
            "_REGISTRY = {}\n"
            "def register(name):\n"
            "    _REGISTRY[name] = True\n"
            "def worker(task):\n"
            "    return _REGISTRY[task.attack]\n"
            "def run_all(pool, tasks):\n"
            "    return pool.map(worker, tasks)\n"
        )
        assert "RL016" in rule_ids(lint(source))

    def test_global_rebind_in_worker_is_flagged(self):
        source = (
            "_STATE = {}\n"
            "def worker(task):\n"
            "    global _STATE\n"
            "    _STATE = {task.key: 1}\n"
            "def run_all(pool, tasks):\n"
            "    return pool.map(worker, tasks)\n"
        )
        assert "RL016" in rule_ids(lint(source))

    def test_non_poolish_receiver_is_ignored(self):
        source = (
            "_RESULTS = []\n"
            "def worker(x):\n"
            "    _RESULTS.append(x)\n"
            "def run_all(values):\n"
            "    return builtins_map.map(worker, values)\n"
        )
        assert "RL016" not in rule_ids(lint(source))


# --------------------------------------------------------------------- #
# RL017 — resources across the pool; post-dispatch mutation              #
# --------------------------------------------------------------------- #


class TestForkCapture:
    def test_open_handle_passed_to_pool_is_flagged(self):
        source = (
            "def run_all(pool, tasks):\n"
            "    log = open('run.log', 'w')\n"
            "    return pool.apply_async(write_all, log)\n"
        )
        assert "RL017" in rule_ids(lint(source))

    def test_lambda_capturing_handle_is_flagged(self):
        source = (
            "def run_all(executor, tasks):\n"
            "    log = open('run.log', 'w')\n"
            "    return executor.map(lambda t: log.write(str(t)), tasks)\n"
        )
        assert "RL017" in rule_ids(lint(source))

    def test_nested_def_capturing_lock_is_flagged(self):
        source = (
            "import threading\n"
            "def run_all(pool, tasks):\n"
            "    guard = threading.Lock()\n"
            "    def worker(task):\n"
            "        with guard:\n"
            "            return task.key\n"
            "    return pool.map(worker, tasks)\n"
        )
        assert "RL017" in rule_ids(lint(source))

    def test_data_read_from_handle_is_not_a_resource(self):
        source = (
            "def run_all(pool, paths):\n"
            "    with open(paths[0]) as fh:\n"
            "        lines = fh.read().splitlines()\n"
            "    return pool.map(str, lines)\n"
        )
        assert "RL017" not in rule_ids(lint(source))

    def test_mutation_after_submit_is_flagged(self):
        source = (
            "def run_all(executor, tasks):\n"
            "    handle = executor.map(str, tasks)\n"
            "    tasks.append('late')\n"
            "    return handle\n"
        )
        assert "RL017" in rule_ids(lint(source))

    def test_rebinding_after_submit_is_clean(self):
        source = (
            "def run_all(executor, tasks):\n"
            "    handle = executor.map(str, tasks)\n"
            "    tasks = ['fresh']\n"
            "    tasks.append('late')\n"
            "    return handle, tasks\n"
        )
        assert "RL017" not in rule_ids(lint(source))

    def test_mutation_before_submit_is_clean(self):
        source = (
            "def run_all(executor, tasks):\n"
            "    tasks.append('early')\n"
            "    return executor.run(tasks)\n"
        )
        assert "RL017" not in rule_ids(lint(source))

    def test_loop_back_edge_keeps_submission_live(self):
        source = (
            "def run_all(executor, tasks, rounds):\n"
            "    for _ in range(rounds):\n"
            "        executor.run(tasks)\n"
            "        tasks.append('extra')\n"
            "    return tasks\n"
        )
        assert "RL017" in rule_ids(lint(source))


# --------------------------------------------------------------------- #
# RL018 — spans and sinks must close on every path                       #
# --------------------------------------------------------------------- #


class TestSpanSinkPairing:
    def test_span_open_on_early_return_path_is_flagged(self):
        source = (
            "def run(tracer, fast):\n"
            "    tracer.emit(SpanBegin(cycle=0, name='train'))\n"
            "    if fast:\n"
            "        return 1\n"
            "    tracer.emit(SpanEnd(cycle=9, name='train', cycles=9))\n"
            "    return 0\n"
        )
        assert "RL018" in rule_ids(lint(source))

    def test_span_closed_on_every_path_is_clean(self):
        source = (
            "def run(tracer, fast):\n"
            "    tracer.emit(SpanBegin(cycle=0, name='train'))\n"
            "    if fast:\n"
            "        tracer.emit(SpanEnd(cycle=1, name='train', cycles=1))\n"
            "        return 1\n"
            "    tracer.emit(SpanEnd(cycle=9, name='train', cycles=9))\n"
            "    return 0\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_span_end_in_finally_discharges(self):
        source = (
            "def run(tracer, body):\n"
            "    tracer.emit(SpanBegin(cycle=0, name='train'))\n"
            "    try:\n"
            "        body()\n"
            "    finally:\n"
            "        tracer.emit(SpanEnd(cycle=9, name='train', cycles=9))\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_dynamic_span_end_name_closes_everything(self):
        source = (
            "def run(tracer, name):\n"
            "    tracer.emit(SpanBegin(cycle=0, name='train'))\n"
            "    tracer.emit(SpanEnd(cycle=1, name=name, cycles=1))\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_unclosed_sink_is_flagged(self):
        source = (
            "def dump(events, path):\n"
            "    sink = JsonlSink(path)\n"
            "    for event in events:\n"
            "        sink.emit(event)\n"
        )
        assert "RL018" in rule_ids(lint(source))

    def test_close_on_one_branch_only_is_flagged(self):
        source = (
            "def dump(path, ok):\n"
            "    sink = ChromeTraceSink(path)\n"
            "    if ok:\n"
            "        sink.close()\n"
        )
        assert "RL018" in rule_ids(lint(source))

    def test_with_managed_sink_is_clean(self):
        source = (
            "def dump(events, path):\n"
            "    sink = JsonlSink(path)\n"
            "    with sink:\n"
            "        for event in events:\n"
            "            sink.emit(event)\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_close_in_finally_discharges(self):
        source = (
            "def dump(events, path):\n"
            "    sink = JsonlSink(path)\n"
            "    try:\n"
            "        for event in events:\n"
            "            sink.emit(event)\n"
            "    finally:\n"
            "        sink.close()\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_returned_sink_transfers_the_obligation(self):
        source = (
            "def make_sink(path):\n"
            "    sink = JsonlSink(path)\n"
            "    return sink\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_handing_the_sink_to_a_call_transfers_ownership(self):
        source = (
            "def trace_machine(path, params):\n"
            "    sink = ChromeTraceSink(path)\n"
            "    tracer = Tracer(sinks=[sink])\n"
            "    return Machine(params, trace=tracer)\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_storing_the_sink_on_self_transfers_ownership(self):
        source = (
            "class Owner:\n"
            "    def open(self, path):\n"
            "        sink = JsonlSink(path)\n"
            "        self._sink = sink\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_enter_exit_scopes_are_exempt(self):
        source = (
            "class Span:\n"
            "    def __enter__(self):\n"
            "        self.tracer.emit(SpanBegin(cycle=0, name='train'))\n"
            "        return self\n"
            "    def __exit__(self, *exc):\n"
            "        self.tracer.emit(SpanEnd(cycle=1, name='train', cycles=1))\n"
        )
        assert "RL018" not in rule_ids(lint(source))

    def test_test_paths_are_exempt(self):
        source = (
            "def dump(path):\n"
            "    sink = JsonlSink(path)\n"
        )
        assert "RL018" not in rule_ids(lint(source, path=TEST_PATH))

    def test_flow_off_disables_the_rule(self):
        source = (
            "def dump(path):\n"
            "    sink = JsonlSink(path)\n"
        )
        assert "RL018" not in rule_ids(lint(source, flow=False))


# --------------------------------------------------------------------- #
# RL019 — kernel components talk only through the port/bus API           #
# --------------------------------------------------------------------- #

KERNEL_PATH = "src/repro/cpu/kernel/components.py"


class TestKernelComponentIsolation:
    def test_machine_backreference_is_flagged(self):
        source = (
            "from repro.cpu.kernel.core import Component\n"
            "class Bad(Component):\n"
            "    name = 'bad'\n"
            "    def on_load(self, event):\n"
            "        self.machine.advance(1)\n"
        )
        assert "RL019" in rule_ids(lint(source, path=KERNEL_PATH))

    def test_component_of_sibling_grab_is_flagged(self):
        source = (
            "from repro.cpu.kernel.core import Component\n"
            "class Bad(Component):\n"
            "    name = 'bad'\n"
            "    def on_load(self, event):\n"
            "        memsys = self.kernel.component_of(self.lane, 'memsys')\n"
            "        memsys.hierarchy.access(event.ctx, event.vaddr)\n"
        )
        assert "RL019" in rule_ids(lint(source, path=KERNEL_PATH))

    def test_kernel_private_state_poke_is_flagged(self):
        source = (
            "from repro.cpu.kernel.core import Component\n"
            "class Bad(Component):\n"
            "    name = 'bad'\n"
            "    def on_load(self, event):\n"
            "        self.kernel._queue.append(event)\n"
        )
        assert "RL019" in rule_ids(lint(source, path=KERNEL_PATH))

    def test_bus_api_and_ports_are_clean(self):
        source = (
            "from repro.cpu.kernel.core import Component\n"
            "class Good(Component):\n"
            "    name = 'good'\n"
            "    def on_load(self, event):\n"
            "        self.tick_port()\n"
            "        clock = self.kernel.clock_of(self.lane)\n"
            "        clock.charge(event.ctx, 1)\n"
            "        self.kernel.publish(event)\n"
            "        self.kernel.post(event)\n"
            "        self.kernel.complete(event)\n"
        )
        assert "RL019" not in rule_ids(lint(source, path=KERNEL_PATH))

    def test_non_component_classes_are_exempt(self):
        # MachineBatch holds machines by design; it is not a Component.
        source = (
            "class MachineBatch:\n"
            "    def __init__(self, machine):\n"
            "        self.machine = machine\n"
            "    def run(self):\n"
            "        return self.machine.cycles\n"
        )
        assert "RL019" not in rule_ids(lint(source, path=KERNEL_PATH))

    def test_rule_only_applies_under_the_kernel_package(self):
        source = (
            "from repro.cpu.kernel.core import Component\n"
            "class Elsewhere(Component):\n"
            "    def on_load(self, event):\n"
            "        self.machine.advance(1)\n"
        )
        assert "RL019" not in rule_ids(lint(source, path=ATTACKS_PATH))

    def test_flow_off_disables_the_rule(self):
        source = (
            "from repro.cpu.kernel.core import Component\n"
            "class Bad(Component):\n"
            "    def on_load(self, event):\n"
            "        self.machine.advance(1)\n"
        )
        assert "RL019" not in rule_ids(lint(source, path=KERNEL_PATH, flow=False))

    def test_noqa_suppresses(self):
        source = (
            "from repro.cpu.kernel.core import Component\n"
            "class Bad(Component):\n"
            "    def on_load(self, event):\n"
            "        self.machine.advance(1)  # repro: noqa[RL019]\n"
        )
        assert "RL019" not in rule_ids(lint(source, path=KERNEL_PATH))


# --------------------------------------------------------------------- #
# Flow-aware upgrades of the syntactic rules                             #
# --------------------------------------------------------------------- #


class TestFlowAwareUpgrades:
    def test_rl003_alias_call_is_caught_with_flow(self):
        source = (
            "import time\n"
            "def f():\n"
            "    t = time.perf_counter\n"
            "    return t()\n"
        )
        assert "RL003" in rule_ids(lint(source, path=CORE_PATH))
        assert "RL003" not in rule_ids(lint(source, path=CORE_PATH, flow=False))

    def test_rl008_alias_call_is_caught_with_flow(self):
        source = "def f(x):\n    h = hash\n    return h(x)\n"
        assert "RL008" in rule_ids(lint(source, path=CORE_PATH))
        assert "RL008" not in rule_ids(lint(source, path=CORE_PATH, flow=False))

    def test_rl001_dynamic_import_is_caught_with_flow(self):
        source = "def f():\n    mod = __import__('random')\n    return mod.random()\n"
        assert "RL001" in rule_ids(lint(source, path=CORE_PATH))
        assert "RL001" not in rule_ids(lint(source, path=CORE_PATH, flow=False))

    def test_dead_branch_finding_is_filtered_with_flow(self):
        source = (
            "import time\n"
            "def f():\n"
            "    if False:\n"
            "        return time.time()\n"
            "    return 0\n"
        )
        assert "RL003" not in rule_ids(lint(source, path=CORE_PATH))
        assert "RL003" in rule_ids(lint(source, path=CORE_PATH, flow=False))

    def test_code_after_return_is_filtered_with_flow(self):
        source = (
            "def f(x):\n"
            "    return x\n"
            "    return hash(x)\n"
        )
        assert "RL008" not in rule_ids(lint(source, path=CORE_PATH))
        assert "RL008" in rule_ids(lint(source, path=CORE_PATH, flow=False))

    def test_live_findings_survive_the_filter(self):
        source = "def f(x):\n    return hash(x)\n"
        assert "RL008" in rule_ids(lint(source, path=CORE_PATH))


# --------------------------------------------------------------------- #
# Property: flow findings ride the same noqa/JSON machinery              #
# --------------------------------------------------------------------- #

#: (rule id, fixture, 0-based index of the line the finding lands on).
FLOW_FIXTURES = [
    (
        "RL014",
        "import time\n"
        "def run():\n"
        "    v = time.time()  # repro: noqa[RL003]\n"
        "    return Trial(attack='x', machine='m', seed=1, params={},\n"
        "                 duration_cycles=v, outcome={})\n",
        3,
    ),
    (
        "RL015",
        "import time\n"
        "from repro.utils.rng import make_rng\n"
        "def go():\n"
        "    s = time.time()  # repro: noqa[RL003]\n"
        "    return make_rng(int(s))\n",
        4,
    ),
    (
        "RL016",
        "_RESULTS = []\n"
        "def worker(task):\n"
        "    _RESULTS.append(task.key)\n"
        "def run_all(pool, tasks):\n"
        "    return pool.map(worker, tasks)\n",
        2,
    ),
    (
        "RL017",
        "def run_all(executor, tasks):\n"
        "    handle = executor.map(str, tasks)\n"
        "    tasks.append('late')\n"
        "    return handle\n",
        2,
    ),
    (
        "RL018",
        "def run(tracer, fast):\n"
        "    tracer.emit(SpanBegin(cycle=0, name='train'))\n"
        "    if fast:\n"
        "        return 1\n"
        "    tracer.emit(SpanEnd(cycle=9, name='train', cycles=9))\n"
        "    return 0\n",
        1,
    ),
]


@pytest.mark.parametrize("rule_id,source,flagged_line", FLOW_FIXTURES, ids=lambda v: v if isinstance(v, str) and v.startswith("RL") else "")
class TestFlowFindingsAreFirstClass:
    def find(self, source):
        return [f for f in lint(source) if f.rule in {r for r, _s, _l in FLOW_FIXTURES}]

    def test_fixture_fires(self, rule_id, source, flagged_line):
        findings = [f for f in lint(source) if f.rule == rule_id]
        assert findings, f"{rule_id} fixture did not fire"
        assert findings[0].line == flagged_line + 1

    def test_targeted_noqa_suppresses(self, rule_id, source, flagged_line):
        lines = source.splitlines()
        lines[flagged_line] += f"  # repro: noqa[{rule_id}]"
        assert rule_id not in rule_ids(lint("\n".join(lines) + "\n"))

    def test_bare_noqa_suppresses(self, rule_id, source, flagged_line):
        lines = source.splitlines()
        # The fixture line may already carry a targeted noqa; replace it.
        base = lines[flagged_line].split("#")[0].rstrip()
        lines[flagged_line] = base + "  # repro: noqa"
        assert rule_id not in rule_ids(lint("\n".join(lines) + "\n"))

    def test_unrelated_noqa_does_not_suppress(self, rule_id, source, flagged_line):
        lines = source.splitlines()
        base = lines[flagged_line].split("#")[0].rstrip()
        lines[flagged_line] = base + "  # repro: noqa[RL999]"
        assert rule_id in rule_ids(lint("\n".join(lines) + "\n"))

    def test_json_rendering_round_trips(self, rule_id, source, flagged_line):
        findings = [f for f in lint(source) if f.rule == rule_id]
        payload = json.loads(render_json(findings, 1))
        [rendered] = payload["findings"]
        assert rendered["rule"] == rule_id
        assert rendered["line"] == flagged_line + 1
        assert rendered["path"] == ATTACKS_PATH
        assert {"col", "message", "hint"} <= set(rendered)
        # The rule itself appears in the catalogue section.
        assert rule_id in {entry["id"] for entry in payload["rules"]}

    def test_select_isolates_the_rule(self, rule_id, source, flagged_line):
        from repro.lint.engine import _make_rules

        findings = lint_source(source, ATTACKS_PATH, _make_rules([rule_id]), flow=True)
        assert rule_ids(findings) == [rule_id] * len(findings) and findings


# --------------------------------------------------------------------- #
# --changed: lint only files changed vs HEAD                             #
# --------------------------------------------------------------------- #


class TestChangedFlag:
    @pytest.fixture()
    def scratch_repo(self, tmp_path, monkeypatch):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", "-C", str(tmp_path), *argv],
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "lint@test")
        git("config", "user.name", "lint test")
        src = tmp_path / "src"
        src.mkdir()
        (src / "clean.py").write_text("X = 1\n")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_no_changes_exits_clean_with_zero_files(self, scratch_repo, capsys):
        from repro.lint.cli import main

        assert main(["src", "--changed"]) == 0
        assert "0 files" in capsys.readouterr().out

    def test_modified_file_is_linted(self, scratch_repo, capsys):
        from repro.lint.cli import main

        (scratch_repo / "src" / "clean.py").write_text("import random\n")
        assert main(["src", "--changed"]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_untracked_file_is_linted(self, scratch_repo, capsys):
        from repro.lint.cli import main

        (scratch_repo / "src" / "fresh.py").write_text("def f(x):\n    return hash(x)\n")
        assert main(["src", "--changed"]) == 1
        assert "RL008" in capsys.readouterr().out

    def test_changes_outside_requested_paths_are_ignored(self, scratch_repo, capsys):
        from repro.lint.cli import main

        (scratch_repo / "elsewhere.py").write_text("import random\n")
        assert main(["src", "--changed"]) == 0

    def test_outside_a_repo_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        from repro.lint.cli import main

        empty = tmp_path / "not-a-repo"
        empty.mkdir()
        monkeypatch.chdir(empty)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
        assert main([".", "--changed"]) == 2
        assert "git" in capsys.readouterr().err


def test_timings_cover_every_selected_rule():
    timings: dict = {}
    lint_source("x = 1\n", ATTACKS_PATH, flow=True, timings=timings)
    from repro.lint.rules import ALL_RULES

    applicable = {
        cls.rule_id for cls in ALL_RULES if cls().applies_to(ATTACKS_PATH)
    }
    assert applicable <= set(timings)
    assert "flow-build" in timings


# --------------------------------------------------------------------- #
# Dedup: flow-aware finding vs its syntactic counterpart                 #
# --------------------------------------------------------------------- #


class TestFlowSyntacticDedup:
    #: ``hash`` rebound to the builtin then called: the line-based RL008
    #: check and the alias upgrade both land on (path, line 3, RL008).
    SHADOWED_HASH = "def f(x):\n    hash = hash\n    return hash(x)\n"

    def test_overlap_keeps_only_the_flow_finding(self):
        findings = lint(self.SHADOWED_HASH, path=CORE_PATH)
        rl008 = [f for f in findings if f.rule == "RL008"]
        assert len(rl008) == 1
        assert rl008[0].via_flow
        assert rl008[0].line == 3
        assert "alias" in rl008[0].message

    def test_syntactic_finding_survives_without_flow(self):
        findings = lint(self.SHADOWED_HASH, path=CORE_PATH, flow=False)
        rl008 = [f for f in findings if f.rule == "RL008"]
        assert len(rl008) == 1
        assert not rl008[0].via_flow

    def test_distinct_lines_are_not_collapsed(self):
        source = (
            "def f(x):\n"
            "    h = hash\n"
            "    y = h(x)\n"
            "    return hash(x)\n"
        )
        findings = [f for f in lint(source, path=CORE_PATH) if f.rule == "RL008"]
        assert sorted((f.line, f.via_flow) for f in findings) == [
            (3, True),
            (4, False),
        ]

    def test_via_flow_round_trips_through_json(self):
        findings = lint(self.SHADOWED_HASH, path=CORE_PATH)
        payload = json.loads(render_json(findings, 1))
        flags = [entry["via_flow"] for entry in payload["findings"]]
        assert True in flags
