"""Tests for fleet fill: shard partitioning and store merging.

The contracts under test are the ones the CI ``fleet-smoke`` job leans
on end-to-end: for any worker count the shards partition the cell set
exactly (disjoint + covering + stable), and merging the workers' stores
yields a store — and aggregates — byte-identical to a single-writer run.
Conflicting payloads under one key are nondeterminism and must refuse.
"""

import json

import pytest

from repro.attacks.trial import Trial, TrialBatch
from repro.campaign import (
    AxisPoint,
    CampaignRunner,
    CampaignSpec,
    TrialStore,
    canonical_json,
)
from repro.fleet import (
    MergeConflictError,
    Shard,
    merge_stores,
    parse_shard,
    partition_cells,
    shard_of_key,
)


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="fleet-t",
        attacks=("variant1",),
        machines=("i7-9700",),
        axes=(AxisPoint(name="baseline"),),
        repeats=4,
        rounds=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def make_batch(seed: int = 1, n: int = 2) -> TrialBatch:
    trials = [
        Trial(index=i, true_outcome=0, inferred_outcome=0, success=True, cycles=9)
        for i in range(n)
    ]
    return TrialBatch(
        attack="variant1",
        seed=seed,
        machine="i7-9700",
        rounds=n,
        trials=trials,
        quality=1.0,
        detail=f"{n}/{n}",
        simulated_cycles=50,
        spans={},
        metrics={},
        notes={},
    )


KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62


class TestShardParsing:
    def test_parse_round_trips(self):
        shard = parse_shard("1/4")
        assert shard == Shard(index=1, total=4)
        assert str(shard) == "1/4"

    @pytest.mark.parametrize("text", ["", "2", "a/b", "1/0", "2/2", "-1/2", "1/2/3"])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    def test_shard_of_key_needs_positive_total(self):
        with pytest.raises(ValueError, match="positive"):
            shard_of_key(KEY, 0)


class TestPartitioning:
    def test_shards_are_disjoint_and_covering_for_any_count(self):
        cells = small_spec().cells()
        keys = {c.key for c in cells}
        for total in (1, 2, 3, 5, 7):
            owned = [
                partition_cells(cells, Shard(index=i, total=total))
                for i in range(total)
            ]
            union = [c.key for slice_ in owned for c in slice_]
            assert len(union) == len(cells)  # disjoint: no cell twice
            assert set(union) == keys  # covering: no cell dropped

    def test_partition_is_stable_and_order_preserving(self):
        cells = small_spec().cells()
        shard = Shard(index=0, total=2)
        first = partition_cells(cells, shard)
        second = partition_cells(list(reversed(cells)), shard)
        assert [c.key for c in first] == [c.key for c in reversed(second)]

    def test_none_shard_means_everything(self):
        cells = small_spec().cells()
        assert partition_cells(cells, None) == list(cells)

    def test_ownership_depends_only_on_key(self):
        # Adding cells to a campaign must not reassign the old ones.
        small = {c.key for c in small_spec(repeats=2).cells()}
        shard = Shard(index=1, total=3)
        owned_small = {k for k in small if shard.owns(k)}
        big = {c.key for c in small_spec(repeats=4).cells()}
        owned_big = {k for k in big if shard.owns(k)}
        assert owned_small == owned_big & small


class TestShardedRunEqualsSerial:
    def test_two_workers_merge_to_byte_identical_store(self, tmp_path):
        spec = small_spec()
        serial_store = TrialStore(tmp_path / "serial")
        serial = CampaignRunner(serial_store).run(spec)
        assert serial.complete

        worker_results = []
        for i in range(2):
            store = TrialStore(tmp_path / f"worker-{i}")
            result = CampaignRunner(store).run(spec, shard=Shard(index=i, total=2))
            assert result.shard == f"{i}/2"
            worker_results.append(result)
        assert (
            sum(len(r.outcomes) for r in worker_results) == spec.n_cells
        )

        report = merge_stores(
            tmp_path / "merged", [tmp_path / "worker-0", tmp_path / "worker-1"]
        )
        assert report.merged == spec.n_cells
        assert report.dest_cells == spec.n_cells

        # Same shard layout, same keys: fill placement cannot leak into
        # the store's structure.  (Raw bytes differ only by the host
        # wall clocks recorded inside batches; the wall-clock-free
        # aggregate view below must be byte-identical.)
        serial_names = {p.name for p in (tmp_path / "serial" / "shards").glob("*.jsonl")}
        merged_names = {p.name for p in (tmp_path / "merged" / "shards").glob("*.jsonl")}
        assert serial_names == merged_names
        assert sorted(TrialStore(tmp_path / "merged").keys()) == sorted(
            TrialStore(tmp_path / "serial").keys()
        )

        merged_run = CampaignRunner(TrialStore(tmp_path / "merged")).run(spec)
        assert merged_run.all_cached
        assert canonical_json(serial.aggregates()) == canonical_json(
            merged_run.aggregates()
        )

    def test_merge_is_order_independent(self, tmp_path):
        spec = small_spec(repeats=2)
        for i in range(2):
            CampaignRunner(TrialStore(tmp_path / f"w{i}")).run(
                spec, shard=Shard(index=i, total=2)
            )
        merge_stores(tmp_path / "ab", [tmp_path / "w0", tmp_path / "w1"])
        merge_stores(tmp_path / "ba", [tmp_path / "w1", tmp_path / "w0"])
        ab = {p.name: p.read_bytes() for p in (tmp_path / "ab" / "shards").glob("*")}
        ba = {p.name: p.read_bytes() for p in (tmp_path / "ba" / "shards").glob("*")}
        assert ab == ba

    def test_sharded_status_counts_only_owned_cells(self, tmp_path):
        spec = small_spec()
        store = TrialStore(tmp_path / "store")
        shard = Shard(index=0, total=2)
        runner = CampaignRunner(store)
        status = runner.status(spec, shard=shard)
        assert status.total == len(partition_cells(spec.cells(), shard))
        runner.run(spec, shard=shard)
        assert runner.status(spec, shard=shard).all_cached
        assert not runner.status(spec).all_cached


class TestMerge:
    def seed_store(self, root, key=KEY, seed=1):
        store = TrialStore(root)
        store.put(key, make_batch(seed=seed))
        return store

    def test_identical_duplicates_collapse(self, tmp_path):
        self.seed_store(tmp_path / "a")
        self.seed_store(tmp_path / "b")
        report = merge_stores(tmp_path / "dest", [tmp_path / "a", tmp_path / "b"])
        assert report.merged == 1
        assert report.identical_duplicates == 1
        assert report.dest_cells == 1
        assert TrialStore(tmp_path / "dest").get(KEY) is not None

    def test_conflicting_payloads_refuse_and_write_nothing(self, tmp_path):
        self.seed_store(tmp_path / "a", seed=1)
        self.seed_store(tmp_path / "b", seed=2)  # same key, different batch
        with pytest.raises(MergeConflictError) as excinfo:
            merge_stores(tmp_path / "dest", [tmp_path / "a", tmp_path / "b"])
        assert KEY in str(excinfo.value)
        assert str(tmp_path / "a") in str(excinfo.value)
        assert str(tmp_path / "b") in str(excinfo.value)
        assert len(TrialStore(tmp_path / "dest")) == 0

    def test_dest_participates_in_conflict_detection(self, tmp_path):
        self.seed_store(tmp_path / "dest", seed=1)
        self.seed_store(tmp_path / "src", seed=2)
        with pytest.raises(MergeConflictError):
            merge_stores(tmp_path / "dest", [tmp_path / "src"])
        assert TrialStore(tmp_path / "dest").get(KEY).seed == 1

    def test_all_conflicts_reported_at_once(self, tmp_path):
        a = self.seed_store(tmp_path / "a", seed=1)
        a.put(OTHER_KEY, make_batch(seed=3))
        b = self.seed_store(tmp_path / "b", seed=2)
        b.put(OTHER_KEY, make_batch(seed=4))
        with pytest.raises(MergeConflictError) as excinfo:
            merge_stores(tmp_path / "dest", [tmp_path / "a", tmp_path / "b"])
        assert len(excinfo.value.conflicts) == 2

    def test_merge_into_existing_dest_adds_only_fresh(self, tmp_path):
        self.seed_store(tmp_path / "dest", key=KEY, seed=1)
        self.seed_store(tmp_path / "src", key=OTHER_KEY, seed=2)
        report = merge_stores(tmp_path / "dest", [tmp_path / "src"])
        assert report.already_present == 1
        assert report.merged == 1
        assert report.dest_cells == 2

    def test_dry_run_writes_nothing(self, tmp_path):
        self.seed_store(tmp_path / "src")
        report = merge_stores(tmp_path / "dest", [tmp_path / "src"], dry_run=True)
        assert report.merged == 1
        assert len(TrialStore(tmp_path / "dest")) == 0

    def test_corrupt_source_lines_are_skipped_and_counted(self, tmp_path):
        self.seed_store(tmp_path / "src")
        shard = tmp_path / "src" / "shards" / "ab.jsonl"
        shard.write_text("garbage\n" + shard.read_text())
        report = merge_stores(tmp_path / "dest", [tmp_path / "src"])
        assert report.corrupt_skipped[str(tmp_path / "src")] == 1
        assert report.merged == 1

    def test_merge_rejects_self_and_non_stores(self, tmp_path):
        self.seed_store(tmp_path / "a")
        with pytest.raises(ValueError, match="destination"):
            merge_stores(tmp_path / "a", [tmp_path / "a"])
        with pytest.raises(ValueError, match="not a TrialStore"):
            merge_stores(tmp_path / "dest", [tmp_path / "nowhere"])
        with pytest.raises(ValueError, match="at least one source"):
            merge_stores(tmp_path / "dest", [])

    def test_merge_is_crash_healed(self, tmp_path):
        # Re-running a merge that already (fully or partially) landed
        # converges: second run merges nothing new, bytes unchanged.
        self.seed_store(tmp_path / "src")
        merge_stores(tmp_path / "dest", [tmp_path / "src"])
        before = (tmp_path / "dest" / "shards" / "ab.jsonl").read_bytes()
        report = merge_stores(tmp_path / "dest", [tmp_path / "src"])
        assert report.merged == 0
        assert report.identical_duplicates == 1
        assert (tmp_path / "dest" / "shards" / "ab.jsonl").read_bytes() == before

    def test_report_renders(self, tmp_path):
        self.seed_store(tmp_path / "src")
        report = merge_stores(tmp_path / "dest", [tmp_path / "src"])
        text = report.render_text()
        assert "merged 1 new cell(s)" in text
        json.dumps(report.as_dict())


class TestStoreRecordsApi:
    def test_records_round_trip_through_write_records(self, tmp_path):
        src = TrialStore(tmp_path / "src")
        src.put(KEY, make_batch(seed=1))
        src.put(OTHER_KEY, make_batch(seed=2))
        dest = TrialStore(tmp_path / "dest")
        dest.write_records(dict(src.records()))
        assert sorted(dest.keys()) == sorted(src.keys())
        assert dest.get(KEY).seed == 1

    def test_write_records_rejects_mismatched_key(self, tmp_path):
        src = TrialStore(tmp_path / "src")
        src.put(KEY, make_batch())
        (_key, record), = list(src.records())
        with pytest.raises(ValueError, match="malformed record"):
            TrialStore(tmp_path / "dest").write_records({OTHER_KEY: record})

    def test_refresh_notices_external_writes(self, tmp_path):
        reader = TrialStore(tmp_path / "store")
        assert reader.get(KEY) is None  # caches the empty shard
        writer = TrialStore(tmp_path / "store")
        writer.put(KEY, make_batch(seed=7))
        assert reader.get(KEY) is None  # stale handle, by design
        assert reader.refresh() == 1
        assert reader.get(KEY).seed == 7

    def test_refresh_on_unchanged_store_is_a_noop(self, tmp_path):
        store = TrialStore(tmp_path / "store")
        store.put(KEY, make_batch())
        assert store.refresh() == 0
        assert store.get(KEY) is not None
