"""Tests for the repro.attacks registry, trial schema, and executor.

The completeness contract: every registered attack runs end-to-end —
traced AND sanitized — and every consumer surface (CLI subcommands,
report rows, lint rule RL012's covers) stays in sync with the registry.
"""

import json

import pytest

from repro.attacks import (
    TaskError,
    TrialBatch,
    TrialExecutor,
    TrialTask,
    attack_names,
    build_matrix,
    get_attack,
    registered_covers,
    run_task_safe,
    run_trials,
    task_seed,
)
from repro.params import preset

PARAMS = preset("i7-9700")
SEED = 2023


class TestRegistry:
    def test_all_eight_attacks_registered(self):
        assert set(attack_names()) == {
            "variant1",
            "variant1-thread",
            "variant2",
            "covert",
            "sgx",
            "switch-leak",
            "rsa",
            "tracker",
        }

    def test_get_attack_unknown_name(self):
        with pytest.raises(ValueError, match="unknown attack"):
            get_attack("rowhammer")

    def test_specs_have_descriptions_and_rounds(self):
        for name in attack_names():
            spec = get_attack(name)
            assert spec.name == name
            assert spec.description
            assert spec.default_rounds > 0

    def test_covers_includes_every_core_attack_class(self):
        # Mirrors lint rule RL012: the classes defining attack entry-point
        # methods in repro/core must all be claimed by some spec.
        assert registered_covers() >= {
            "Variant1CrossThread",
            "Variant1CrossProcess",
            "Variant2UserKernel",
            "CovertChannel",
            "SGXControlFlowAttack",
            "SGXCovertChannel",
            "SwitchCaseLeak",
            "TimingConstantRSAAttack",
            "LoadTimingTracker",
        }

    def test_leakcheck_victim_links_resolve(self):
        from repro.leakcheck import get_victim

        for name in attack_names():
            victim = get_attack(name).leakcheck_victim
            if victim is not None:
                assert get_victim(victim) is not None


class TestCompleteness:
    """Every registered attack runs end-to-end, traced and sanitized."""

    @pytest.mark.parametrize("name", attack_names())
    def test_runs_traced_and_sanitized(self, name):
        batch = run_trials(
            name, PARAMS, seed=SEED, rounds=2, trace=True, sanitize=True
        )
        assert isinstance(batch, TrialBatch)
        assert batch.attack == name
        assert batch.n_trials >= 2
        assert 0.0 <= batch.quality <= 1.0
        assert batch.detail
        assert batch.simulated_cycles > 0
        assert "total" in batch.spans
        assert batch.metrics["machine.cycles"] > 0
        for trial in batch.trials:
            assert trial.success == (trial.true_outcome == trial.inferred_outcome)
        # The serializable view must actually serialize (payloads excluded).
        json.dumps(batch.as_dict())

    @pytest.mark.parametrize("name", attack_names())
    def test_same_seed_same_batch(self, name):
        a = run_trials(name, PARAMS, seed=SEED, rounds=2)
        b = run_trials(name, PARAMS, seed=SEED, rounds=2)
        assert [t.as_dict() for t in a.trials] == [t.as_dict() for t in b.trials]
        assert a.simulated_cycles == b.simulated_cycles
        assert a.quality == b.quality


class TestConsumerSync:
    def test_report_rows_match_registry(self):
        from repro.analysis.report import ATTACK_ROWS

        assert set(ATTACK_ROWS) == set(attack_names())

    def test_cli_trace_metrics_choices_match_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions if hasattr(a, "choices") and a.choices)
        for command in ("trace", "metrics", "run"):
            attack_action = next(
                a for a in sub.choices[command]._actions if a.dest == "attack"
            )
            assert set(attack_action.choices) == set(attack_names())

    def test_obs_runner_has_no_dispatch_table(self):
        import repro.obs.runner as runner

        assert not hasattr(runner, "_RUNNERS")
        assert not hasattr(runner, "ATTACK_NAMES")
        assert not hasattr(runner, "DEFAULT_ROUNDS")


class TestTrialBatchMerge:
    def test_merge_recomputes_success_rate(self):
        a = run_trials("variant1", PARAMS, seed=1, rounds=3)
        b = run_trials("variant1", PARAMS, seed=2, rounds=3)
        merged = TrialBatch.merge([a, b])
        assert merged.n_trials == a.n_trials + b.n_trials
        assert merged.quality == merged.success_rate
        assert merged.simulated_cycles == a.simulated_cycles + b.simulated_cycles
        assert merged.spans["total"]["cycles"] == (
            a.spans["total"]["cycles"] + b.spans["total"]["cycles"]
        )
        assert merged.notes == {
            "merged_batches": 2,
            "merged_seeds": [1, 2],
            "merged_machines": ["i7-9700"],
        }

    def test_merge_refuses_mixed_attacks(self):
        a = run_trials("variant1", PARAMS, seed=1, rounds=2)
        b = run_trials("sgx", PARAMS, seed=1, rounds=2)
        with pytest.raises(ValueError, match="different attacks"):
            TrialBatch.merge([a, b])

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialBatch.merge([])

    def test_merge_single_batch_passthrough(self):
        a = run_trials("sgx", PARAMS, seed=1, rounds=2)
        assert TrialBatch.merge([a]) is a


class TestExecutor:
    def test_task_seed_is_dispatch_order_independent(self):
        assert task_seed(SEED, "sgx", "i7-9700", 0) == task_seed(
            SEED, "sgx", "i7-9700", 0
        )
        assert task_seed(SEED, "sgx", "i7-9700", 0) != task_seed(
            SEED, "sgx", "i7-9700", 1
        )
        assert task_seed(SEED, "sgx", "i7-9700", 0) != task_seed(
            SEED, "covert", "i7-9700", 0
        )

    def test_build_matrix_shape(self):
        tasks = build_matrix(("sgx", "covert"), base_seed=SEED, repeats=3)
        assert len(tasks) == 6
        assert len({(t.attack, t.seed) for t in tasks}) == 6

    def test_parallel_aggregates_equal_serial(self):
        tasks = build_matrix(
            ("variant1", "sgx"), base_seed=SEED, repeats=2, rounds=2
        )
        serial = TrialExecutor(jobs=1).run(tasks)
        parallel = TrialExecutor(jobs=2).run(tasks)
        assert set(serial.merged) == set(parallel.merged) == {"variant1", "sgx"}
        for name in serial.merged:
            s, p = serial.merged[name], parallel.merged[name]
            assert s.quality == p.quality
            assert s.simulated_cycles == p.simulated_cycles
            assert [t.as_dict() for t in s.trials] == [t.as_dict() for t in p.trials]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            TrialExecutor(jobs=0)

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            TrialExecutor(jobs=1).run([])


class TestTrialBatchRoundTrip:
    """Satellite contract: ``from_dict(as_dict())`` preserves every
    aggregate for all eight attacks; payloads are documented as lost."""

    @pytest.mark.parametrize("name", attack_names())
    def test_round_trip_preserves_aggregates(self, name):
        batch = run_trials(name, PARAMS, seed=SEED, rounds=2)
        # The store's actual path: dict → JSON → dict → batch → dict.
        over_the_wire = json.loads(json.dumps(batch.as_dict()))
        restored = TrialBatch.from_dict(over_the_wire)
        assert restored.attack == batch.attack
        assert restored.seed == batch.seed
        assert restored.machine == batch.machine
        assert restored.n_trials == batch.n_trials
        assert restored.successes == batch.successes
        assert restored.success_rate == batch.success_rate
        assert restored.quality == batch.quality
        assert restored.detail == batch.detail
        assert restored.simulated_cycles == batch.simulated_cycles
        assert json.loads(json.dumps(restored.as_dict())) == over_the_wire
        # The one deliberate loss: per-trial rich result objects.
        assert all(trial.payload is None for trial in restored.trials)

    def test_merged_batch_round_trips(self):
        merged = TrialBatch.merge(
            [
                run_trials("variant1", PARAMS, seed=1, rounds=2),
                run_trials("variant1", PARAMS, seed=2, rounds=2),
            ]
        )
        restored = TrialBatch.from_dict(json.loads(json.dumps(merged.as_dict())))
        assert restored.notes["merged_seeds"] == [1, 2]
        assert restored.quality == merged.quality


class TestExecutorFaultIsolation:
    """Satellite contract: one raising worker no longer aborts ``pool.map``
    and discards every completed batch — it comes back as a TaskError."""

    def bad_task(self) -> TrialTask:
        # An unknown attack name makes run_task raise inside the worker.
        return TrialTask(attack="rowhammer", params=PARAMS, seed=SEED, rounds=2)

    def test_run_task_safe_returns_error_value(self):
        outcome = run_task_safe(self.bad_task())
        assert isinstance(outcome, TaskError)
        assert outcome.task.attack == "rowhammer"
        assert "unknown attack" in outcome.summary
        json.dumps(outcome.as_dict())

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_good_cells_survive_a_failing_cell(self, jobs):
        tasks = build_matrix(("sgx",), base_seed=SEED, repeats=2, rounds=2)
        tasks.append(self.bad_task())
        result = TrialExecutor(jobs=jobs).run(tasks)
        assert len(result.batches) == 2
        assert len(result.errors) == 1
        assert result.errors[0].task.attack == "rowhammer"
        assert set(result.merged) == {"sgx"}
        assert result.as_dict()["errors"][0]["attack"] == "rowhammer"

    def test_failing_cell_does_not_change_sibling_aggregates(self):
        tasks = build_matrix(("sgx",), base_seed=SEED, repeats=2, rounds=2)
        clean = TrialExecutor(jobs=1).run(list(tasks))
        dirty = TrialExecutor(jobs=1).run(list(tasks) + [self.bad_task()])

        def deterministic(batch):  # host wall-clock varies run to run
            data = batch.as_dict()
            data["spans"] = {
                name: {k: v for k, v in stats.items() if k != "wall_seconds"}
                for name, stats in data["spans"].items()
            }
            return data

        assert deterministic(clean.merged["sgx"]) == deterministic(dirty.merged["sgx"])
