"""Tests for repro.obs: events, sinks, tracer, machine wiring, leakcheck.

The load-bearing test is the ground-truth replay: reconstructing the
IP-stride history table purely from ``TableTransition`` events must land
on exactly the live table of the machine that emitted them.
"""

import json

import pytest

from repro.cpu.machine import Machine
from repro.obs.events import (
    EVENT_TYPES,
    EntrySnapshot,
    LoadTraced,
    PrefetchFill,
    PrefetchIssued,
    SpanBegin,
    SpanEnd,
    TableTransition,
    TlbMiss,
)
from repro.obs.sinks import ChromeTraceSink, JsonlSink, RingBufferSink, event_json
from repro.obs.tracer import (
    ENV_VAR,
    NULL_TRACER,
    NullTracer,
    Tracer,
    resolve_tracer,
    trace_enabled,
)
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE


class TestEvents:
    def test_kinds_are_unique_and_named(self):
        kinds = [cls.kind for cls in EVENT_TYPES]
        assert len(set(kinds)) == len(kinds)
        assert "event" not in kinds  # every concrete type overrides the base

    def test_to_dict_carries_kind_and_fields(self):
        event = TlbMiss(cycle=7, asid=1, vaddr=0x1000, vpage=1)
        payload = event.to_dict()
        assert payload == {"kind": "TlbMiss", "cycle": 7, "asid": 1, "vaddr": 0x1000, "vpage": 1}

    def test_table_transition_nests_snapshots(self):
        snap = EntrySnapshot(index=3, last_vaddr=64, last_paddr=64, stride=64, confidence=2)
        event = TableTransition(
            cycle=1, transition="update", index=3, slot=0, before=snap, after=snap, triggered=True
        )
        payload = event.to_dict()
        assert payload["before"]["stride"] == 64
        assert payload["after"]["confidence"] == 2
        assert payload["triggered"] is True

    def test_events_are_frozen(self):
        event = PrefetchFill(cycle=0, paddr=128)
        with pytest.raises(AttributeError):
            event.paddr = 256

    def test_entry_snapshot_of_duck_types(self):
        class FakeEntry:
            index, last_vaddr, last_paddr, stride, confidence = 1, 2, 3, 4, 0

        snap = EntrySnapshot.of(FakeEntry)
        assert (snap.index, snap.stride) == (1, 4)

    def test_event_json_is_canonical(self):
        event = PrefetchIssued(cycle=9, source="ip-stride", paddr=4160, trigger_ip=0x40)
        text = event_json(event)
        assert text == json.dumps(json.loads(text), sort_keys=True, separators=(",", ":"))
        assert json.loads(text)["kind"] == "PrefetchIssued"


class TestRingBufferSink:
    def test_bounded_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for cycle in range(5):
            sink.emit(PrefetchFill(cycle=cycle, paddr=cycle))
        assert [e.cycle for e in sink.events()] == [2, 3, 4]
        assert len(sink) == 3

    def test_unbounded_and_kind_filter(self):
        sink = RingBufferSink(capacity=None)
        sink.emit(PrefetchFill(cycle=0, paddr=0))
        sink.emit(TlbMiss(cycle=1, asid=0, vaddr=0, vpage=0))
        assert len(sink.events("TlbMiss")) == 1
        assert len(sink.events()) == 2
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.emit(PrefetchFill(cycle=0, paddr=64))
        sink.emit(TlbMiss(cycle=1, asid=0, vaddr=0, vpage=0))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "PrefetchFill"
        assert sink.events_written == 2

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "x.jsonl"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError):
            sink.emit(PrefetchFill(cycle=0, paddr=0))


class TestChromeTraceSink:
    def test_produces_valid_trace_event_json(self, tmp_path):
        path = tmp_path / "run.trace.json"
        sink = ChromeTraceSink(str(path), cycles_per_us=2.0)
        sink.emit(SpanBegin(cycle=10, name="train"))
        sink.emit(PrefetchFill(cycle=12, paddr=64))
        sink.emit(SpanEnd(cycle=20, name="train", cycles=10))
        sink.close()
        data = json.loads(path.read_text())
        records = data["traceEvents"]
        assert records[0]["ph"] == "M"  # process_name metadata
        begin = next(r for r in records if r["ph"] == "B")
        end = next(r for r in records if r["ph"] == "E")
        assert begin["name"] == end["name"] == "train"
        assert begin["ts"] == 5.0  # 10 cycles at 2 cycles/us
        instant = next(r for r in records if r["ph"] == "i")
        assert instant["args"]["kind"] == "PrefetchFill"

    def test_rejects_bad_rate_and_emit_after_close(self, tmp_path):
        with pytest.raises(ValueError):
            ChromeTraceSink(str(tmp_path / "x.json"), cycles_per_us=0)
        sink = ChromeTraceSink(str(tmp_path / "y.json"))
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(PrefetchFill(cycle=0, paddr=0))

    def test_two_machines_get_labeled_lanes(self, tmp_path):
        """Two machines on one tracer land in two labeled process lanes."""
        path = tmp_path / "two.trace.json"
        sink = ChromeTraceSink(str(path))
        tracer = Tracer([sink])
        first = Machine(COFFEE_LAKE_I7_9700, seed=1, trace=tracer)
        second = Machine(COFFEE_LAKE_I7_9700, seed=2, trace=tracer)
        for machine in (first, second):
            ctx = machine.new_thread("t")
            machine.context_switch(ctx)
            buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
            machine.load(ctx, 0x40_0000, buffer.base)
        tracer.close()
        records = json.loads(path.read_text())["traceEvents"]
        names = {
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert names == {"i7-9700 #1", "i7-9700 #2"}
        # stable, distinct pids per lane, allocated from 1
        pids = sorted(
            {r["pid"] for r in records if r["ph"] == "M" and r["name"] == "process_name"}
        )
        assert pids == [1, 2]
        thread_names = {
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        assert "simulated core" in thread_names


class TestSpanExceptionSafety:
    """Regression: SpanEnd must go out even when the span body raises."""

    def balance(self, tracer: Tracer) -> tuple[list[str], list[str]]:
        begins = [e.name for e in tracer.events("SpanBegin")]
        ends = [e.name for e in tracer.events("SpanEnd")]
        return begins, ends

    def test_span_end_emitted_on_raise(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=1, trace=True)
        with pytest.raises(RuntimeError):
            with machine.span("train"):
                ctx = machine.new_thread("t")
                machine.context_switch(ctx)
                buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
                machine.load(ctx, 0x40_0000, buffer.base)
                raise RuntimeError("attack body blew up")
        begins, ends = self.balance(machine.tracer)
        assert begins == ends == ["train"]
        assert machine.profile.spans["train"].count == 1

    def test_nested_spans_unwind_through_exception(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=1, trace=True)
        with pytest.raises(ValueError):
            with machine.span("outer"):
                with machine.span("inner"):
                    raise ValueError("innermost failure")
        begins, ends = self.balance(machine.tracer)
        assert begins == ["outer", "inner"]
        # LIFO unwinding: the inner span closes before the outer one
        assert ends == ["inner", "outer"]
        assert machine.profile.spans["inner"].count == 1
        assert machine.profile.spans["outer"].count == 1

    def test_span_end_emitted_after_midspan_disable(self):
        """Toggling the tracer off mid-span must not strand a SpanBegin."""
        machine = Machine(COFFEE_LAKE_I7_9700, seed=1, trace=True)
        with machine.span("probe"):
            machine.tracer.enabled = False
        begins, ends = self.balance(machine.tracer)
        assert begins == ends == ["probe"]

    def test_no_orphan_end_when_begin_was_suppressed(self):
        """A span opened while disabled stays silent even if enabled later."""
        machine = Machine(COFFEE_LAKE_I7_9700, seed=1, trace=True)
        machine.tracer.enabled = False
        with machine.span("probe"):
            machine.tracer.enabled = True
        begins, ends = self.balance(machine.tracer)
        assert begins == ends == []
        assert machine.profile.spans["probe"].count == 1


class TestTracer:
    def test_default_sink_is_ring_buffer(self):
        tracer = Tracer()
        tracer.emit(PrefetchFill(cycle=0, paddr=0))
        assert len(tracer.events()) == 1
        assert tracer.enabled

    def test_null_tracer_discards_and_rejects_sinks(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(PrefetchFill(cycle=0, paddr=0))
        assert NULL_TRACER.events() == []
        with pytest.raises(ValueError):
            NULL_TRACER.add_sink(RingBufferSink())

    def test_resolve_tracer(self):
        assert resolve_tracer(None) is NULL_TRACER
        assert resolve_tracer(False) is NULL_TRACER
        assert isinstance(resolve_tracer(True), Tracer)
        custom = Tracer()
        assert resolve_tracer(custom) is custom

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not trace_enabled(None)
        monkeypatch.setenv(ENV_VAR, "1")
        assert trace_enabled(None)
        assert not trace_enabled(False)  # explicit beats environment
        machine = Machine(COFFEE_LAKE_I7_9700, seed=1)
        assert machine.tracer.enabled

    def test_machine_defaults_to_null_tracer(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        machine = Machine(COFFEE_LAKE_I7_9700, seed=1)
        assert isinstance(machine.tracer, NullTracer)


def _strided_run(machine):
    """A deterministic little workload touching every hook."""
    ctx = machine.new_thread("walker")
    machine.context_switch(ctx)
    buffer = machine.new_buffer(ctx.space, 4 * PAGE_SIZE, name="walk")
    ip = 0x0040_1230
    for i in range(8):
        vaddr = buffer.line_addr(3 * i)
        machine.warm_tlb(ctx, vaddr)
        machine.load(ctx, ip, vaddr)
    machine.clflush(ctx, buffer.line_addr(0))
    return ctx, buffer


class TestMachineWiring:
    def test_traced_run_emits_every_core_kind(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=3, trace=True)
        with machine.span("walk"):
            _strided_run(machine)
        kinds = {event.kind for event in machine.tracer.events()}
        assert {
            "LoadTraced",
            "TableTransition",
            "PrefetchIssued",
            "PrefetchFill",
            "ContextSwitch",
            "Clflush",
            "SpanBegin",
            "SpanEnd",
        } <= kinds

    def test_events_cycle_stamped_monotonically(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=3, trace=True)
        _strided_run(machine)
        cycles = [event.cycle for event in machine.tracer.events()]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= machine.cycles

    def test_load_traced_latency_matches_return(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=4, trace=True)
        ctx = machine.new_thread("t")
        machine.context_switch(ctx)
        buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_tlb(ctx, buffer.base)
        latency = machine.load(ctx, 0x40_0000, buffer.base)
        event = machine.tracer.events("LoadTraced")[-1]
        assert event.latency == latency
        assert event.vaddr == buffer.base

    def test_table_transitions_replay_to_live_table(self):
        """Acceptance check: the event stream IS the table's history."""
        machine = Machine(COFFEE_LAKE_I7_9700, seed=2023, trace=True)
        _strided_run(machine)
        replayed: dict[int, EntrySnapshot] = {}
        for event in machine.tracer.events("TableTransition"):
            if event.transition == "clear":
                replayed.clear()
            elif event.after is None:  # evict
                del replayed[event.index]
            else:  # allocate / update
                replayed[event.index] = event.after
        live = {
            entry.index: EntrySnapshot.of(entry) for entry in machine.ip_stride.entries()
        }
        assert replayed == live
        assert replayed  # the workload trained at least one entry

    def test_prefetch_issue_precedes_fill(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=5, trace=True)
        _strided_run(machine)
        events = machine.tracer.events()
        filled = [e.paddr for e in events if isinstance(e, PrefetchFill)]
        assert filled
        for paddr in filled:
            order = [
                e.kind
                for e in events
                if (isinstance(e, PrefetchIssued) or isinstance(e, PrefetchFill))
                and e.paddr == paddr
            ]
            assert order.index("PrefetchIssued") < order.index("PrefetchFill")

    def test_span_events_only_when_traced(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=1)
        with machine.span("quiet"):
            pass
        assert "quiet" in machine.profile.spans
        traced = Machine(COFFEE_LAKE_I7_9700, seed=1, trace=True)
        with traced.span("loud"):
            pass
        names = [e.name for e in traced.tracer.events("SpanEnd")]
        assert names == ["loud"]


class TestLeakcheckViaTrace:
    # A small, fast slice of the registry: one leaky, one safe victim.
    VICTIMS = ("branch-load", "rsa-montgomery-ladder")

    def test_verdicts_agree_with_polling(self):
        from repro.leakcheck.dynamic import dynamic_leaky
        from repro.leakcheck.victims import get_victim

        for name in self.VICTIMS:
            spec = get_victim(name).spec
            assert dynamic_leaky(spec) == dynamic_leaky(spec, via_trace=True), name

    def test_trace_read_refines_polling(self):
        """Trace may flag more victim activity than a poll (page-jump
        retrains mask disturbances), never less."""
        from repro.leakcheck.dynamic import observe
        from repro.leakcheck.victims import get_victim

        for name in self.VICTIMS:
            spec = get_victim(name).spec
            for secret in (0, 1):
                polled = observe(spec, secret).psc_triggered
                traced = observe(spec, secret, via_trace=True).psc_triggered
                for poll_hit, trace_hit in zip(polled, traced):
                    if trace_hit:
                        assert poll_hit, (name, secret)
