"""Unit tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    align_down,
    align_up,
    cache_line_index,
    low_bits,
    page_number,
    page_offset,
    sign_extend,
)


class TestLowBits:
    def test_extracts_low_byte(self):
        assert low_bits(0x1234_56AB, 8) == 0xAB

    def test_zero_bits_is_zero(self):
        assert low_bits(0xFFFF, 0) == 0

    def test_full_width(self):
        assert low_bits(0xAB, 16) == 0xAB

    def test_negative_bit_count_rejected(self):
        with pytest.raises(ValueError):
            low_bits(1, -1)

    @given(st.integers(min_value=0, max_value=2**64), st.integers(min_value=0, max_value=64))
    def test_result_bounded(self, value, n_bits):
        assert 0 <= low_bits(value, n_bits) < max(1 << n_bits, 1)

    def test_prefetcher_aliasing_property(self):
        # Two IPs 256 bytes apart share the prefetcher index.
        assert low_bits(0x400123, 8) == low_bits(0x400123 + 0x100, 8)


class TestSignExtend:
    def test_positive_value_unchanged(self):
        assert sign_extend(5, 13) == 5

    def test_negative_value(self):
        assert sign_extend(0b1_1111_1111_1111, 13) == -1

    def test_most_negative(self):
        assert sign_extend(1 << 12, 13) == -(1 << 12)

    def test_wraps_large_positive(self):
        # Cross-frame "strides" wrap into the 13-bit register.
        assert sign_extend(0x2000, 13) == 0
        assert sign_extend(0x2001, 13) == 1

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=-(2**12), max_value=2**12 - 1))
    def test_roundtrip_13_bits(self, value):
        assert sign_extend(value & 0x1FFF, 13) == value

    @given(st.integers(), st.integers(min_value=1, max_value=32))
    def test_range_invariant(self, value, bits):
        result = sign_extend(value, bits)
        assert -(1 << (bits - 1)) <= result < (1 << (bits - 1))


class TestAlignment:
    def test_align_down(self):
        assert align_down(4097, 4096) == 4096

    def test_align_down_exact(self):
        assert align_down(8192, 4096) == 8192

    def test_align_up(self):
        assert align_up(4097, 4096) == 8192

    def test_align_up_exact(self):
        assert align_up(4096, 4096) == 4096

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_down(100, 3)
        with pytest.raises(ValueError):
            align_up(100, 0)

    @given(st.integers(min_value=0, max_value=2**48), st.sampled_from([64, 4096, 2**21]))
    def test_down_le_up(self, addr, gran):
        assert align_down(addr, gran) <= addr <= align_up(addr, gran)


class TestPageAndLineHelpers:
    def test_cache_line_index(self):
        assert cache_line_index(0) == 0
        assert cache_line_index(63) == 0
        assert cache_line_index(64) == 1

    def test_page_number(self):
        assert page_number(4095) == 0
        assert page_number(4096) == 1

    def test_page_offset(self):
        assert page_offset(4097) == 1
        assert page_offset(8192) == 0

    @given(st.integers(min_value=0, max_value=2**40))
    def test_page_decomposition(self, addr):
        assert page_number(addr) * 4096 + page_offset(addr) == addr
