"""Unit and property tests for the set-associative cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.cache import Cache
from repro.params import CacheGeometry

SMALL = CacheGeometry(name="test", sets=4, ways=2, latency=4)


def make_cache(replacement="lru"):
    return Cache(SMALL, replacement=replacement)


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(0x1000)
        cache.insert(0x1000)
        assert cache.lookup(0x1000)

    def test_same_line_different_bytes(self):
        cache = make_cache()
        cache.insert(0x1000)
        assert cache.lookup(0x103F)  # last byte of the same line
        assert not cache.contains(0x1040)  # next line

    def test_contains_does_not_mutate(self):
        cache = make_cache()
        cache.insert(0)  # set 0
        cache.insert(4 * 64)  # set 0, different tag
        # `contains` must not refresh LRU: way holding addr 0 stays LRU.
        cache.contains(0)
        evicted = cache.insert(8 * 64)
        assert evicted == 0

    def test_eviction_returns_line_address(self):
        cache = make_cache()
        cache.insert(0)
        cache.insert(4 * 64)
        evicted = cache.insert(8 * 64)  # same set 0, third distinct tag
        assert evicted == 0

    def test_reinsert_does_not_evict(self):
        cache = make_cache()
        cache.insert(0x1000)
        assert cache.insert(0x1000) is None

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(0x2000)
        assert cache.invalidate(0x2000)
        assert not cache.contains(0x2000)
        assert not cache.invalidate(0x2000)

    def test_flush_all(self):
        cache = make_cache()
        for i in range(8):
            cache.insert(i * 64)
        cache.flush_all()
        assert all(not cache.contains(i * 64) for i in range(8))

    def test_stats(self):
        cache = make_cache()
        cache.lookup(0)
        cache.insert(0)
        cache.lookup(0)
        assert cache.misses == 1
        assert cache.hits == 1


class TestGeometry:
    def test_set_index_wraps(self):
        cache = make_cache()
        assert cache.set_index(0) == 0
        assert cache.set_index(64) == 1
        assert cache.set_index(4 * 64) == 0

    def test_line_address(self):
        cache = make_cache()
        assert cache.line_address(0x1234) == 0x1200

    def test_occupancy_capped_at_ways(self):
        cache = make_cache()
        for tag in range(10):
            cache.insert(tag * 4 * 64)  # all set 0
        assert cache.set_occupancy(0) == 2

    def test_resident_lines_roundtrip(self):
        cache = make_cache()
        inserted = {0, 64, 2 * 64}
        for addr in inserted:
            cache.insert(addr)
        assert set(cache.resident_lines()) == inserted


class TestLRUBehaviour:
    def test_lru_eviction_order(self):
        cache = make_cache("lru")
        cache.insert(0)
        cache.insert(4 * 64)
        cache.lookup(0)  # refresh the older line
        evicted = cache.insert(8 * 64)
        assert evicted == 4 * 64


@settings(max_examples=50)
@given(
    st.lists(
        st.integers(min_value=0, max_value=63).map(lambda line: line * 64),
        min_size=1,
        max_size=200,
    )
)
def test_property_occupancy_and_residency(addresses):
    """After any access sequence: each set holds at most `ways` lines and
    the most recently inserted line is always resident."""
    cache = make_cache()
    for addr in addresses:
        if not cache.lookup(addr):
            cache.insert(addr)
        assert cache.contains(addr)
    for set_index in range(cache.n_sets):
        assert cache.set_occupancy(set_index) <= SMALL.ways


@settings(max_examples=50)
@given(
    st.lists(
        st.integers(min_value=0, max_value=2**24 // 64).map(lambda line: line * 64),
        min_size=1,
        max_size=100,
    )
)
def test_property_eviction_only_from_same_set(addresses):
    cache = make_cache()
    for addr in addresses:
        evicted = cache.insert(addr)
        if evicted is not None:
            assert cache.set_index(evicted) == cache.set_index(addr)
