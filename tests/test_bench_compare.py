"""Tests for the bench regression gate (`afterimage bench compare`).

The gate's contract: self-compare of a valid artifact exits 0, an
injected regression exits 1, incomparable pairs (kind/schema/machine
mismatch, missing provenance, unreadable files) are *refused* with exit
2 rather than silently diffed, and the CLI wires those exit codes
through unchanged.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.bench import (
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    compare_documents,
    compare_files,
)
from repro.bench.compare import artifact_kind
from repro.bench.provenance import identity, provenance

SRC = str(Path(__file__).resolve().parent.parent / "src")


def stamped(doc: dict) -> dict:
    return {**doc, "provenance": provenance()}


def telemetry_doc(**overrides) -> dict:
    doc = stamped(
        {
            "schema": 1,
            "kind": "telemetry",
            "speedup": 1.6,
            "serial_wall_seconds": 10.0,
            "parallel_wall_seconds": 6.25,
            "telemetry_overhead_ratio": 0.01,
            "telemetry_overhead_bound": 0.05,
            "aggregates_identical": True,
            "attribution": {"coverage": 1.0},
        }
    )
    doc.update(overrides)
    return doc


def attacks_doc(**overrides) -> dict:
    doc = stamped(
        {
            "schema": 3,
            "kind": "attacks",
            "speedup": 1.5,
            "serial_wall_seconds": 8.0,
            "parallel_wall_seconds": 5.3,
            "aggregates_identical": True,
            "per_attack": {
                "variant1": {"quality": 0.97, "n_trials": 40, "simulated_cycles": 1000},
            },
        }
    )
    doc.update(overrides)
    return doc


def obs_doc(**overrides) -> dict:
    doc = stamped(
        {
            "schema": 3,
            "kind": "obs",
            "results": [
                {
                    "attack": "variant1",
                    "simulated_cycles": 1000,
                    "quality": 0.97,
                    "rounds": 50,
                    "wall_seconds": 1.0,
                }
            ],
        }
    )
    doc.update(overrides)
    return doc


def kernel_doc(**overrides) -> dict:
    doc = stamped(
        {
            "schema": 1,
            "kind": "kernel",
            "lanes": 32,
            "rounds": 8,
            "serial_wall_seconds": 3.0,
            "batched_wall_seconds": 2.8,
            "batch_speedup": 1.07,
            "batch_overhead_ratio": -0.05,
            "batch_overhead_bound": 0.10,
            "aggregates_identical": True,
            "simulated_cycles_total": 4_600_000_000,
            "loads_retired_total": 17408,
            "mean_quality": 0.96875,
        }
    )
    doc.update(overrides)
    return doc


def serve_doc(**overrides) -> dict:
    doc = stamped(
        {
            "schema": 2,
            "kind": "serve",
            "campaign": "attacks-vs-noise",
            "cold_aggregate_seconds": 0.006,
            "warm_aggregate_p50_seconds": 0.002,
            "warm_aggregate_p99_seconds": 0.004,
            "revalidate_p50_seconds": 0.001,
            "warm_budget_seconds": 0.010,
            "concurrent": {"p50_seconds": 0.02, "p99_seconds": 0.05},
            "cache": {"hit_ratio": 0.95},
            "verification": {
                "aggregate_complete": True,
                "warm_under_budget": True,
                "etag_revalidates": True,
            },
        }
    )
    doc.update(overrides)
    return doc


class TestArtifactKind:
    def test_kind_field_wins(self):
        assert artifact_kind({"kind": "telemetry"}) == "telemetry"
        assert artifact_kind({"kind": "kernel"}) == "kernel"
        assert artifact_kind({"kind": "serve"}) == "serve"

    def test_load_bearing_keys(self):
        assert artifact_kind({"telemetry_overhead_ratio": 0.0}) == "telemetry"
        assert artifact_kind({"serial_wall_seconds": 1.0}) == "attacks"
        assert artifact_kind({"cold_wall_seconds": 1.0}) == "campaign"
        assert artifact_kind({"results": []}) == "obs"
        assert artifact_kind({"batched_wall_seconds": 1.0}) == "kernel"
        assert artifact_kind({"warm_aggregate_p50_seconds": 0.002}) == "serve"

    def test_unrecognized(self):
        assert artifact_kind({"foo": 1}) is None
        assert artifact_kind([]) is None


class TestSelfCompare:
    def test_telemetry_self_compare_ok(self):
        doc = telemetry_doc()
        report = compare_documents(doc, doc)
        assert report.refusal is None
        assert report.exit_code == EXIT_OK
        assert report.regressions == []

    def test_attacks_self_compare_ok(self):
        doc = attacks_doc()
        assert compare_documents(doc, doc).exit_code == EXIT_OK

    def test_obs_self_compare_ok(self):
        doc = obs_doc()
        assert compare_documents(doc, doc).exit_code == EXIT_OK

    def test_kernel_self_compare_ok(self):
        doc = kernel_doc()
        report = compare_documents(doc, doc)
        assert report.refusal is None
        assert report.exit_code == EXIT_OK
        assert report.regressions == []

    def test_serve_self_compare_ok(self):
        doc = serve_doc()
        report = compare_documents(doc, doc)
        assert report.refusal is None
        assert report.exit_code == EXIT_OK
        assert report.regressions == []

    def test_committed_serve_artifact_self_compares(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
        if not path.exists():
            return
        doc = json.loads(path.read_text())
        assert compare_documents(doc, doc).exit_code == EXIT_OK


class TestRegressions:
    def test_speedup_regression(self):
        report = compare_documents(telemetry_doc(), telemetry_doc(speedup=1.0))
        assert report.exit_code == EXIT_REGRESSION
        assert any(f.field == "speedup" for f in report.regressions)

    def test_speedup_within_tolerance_passes(self):
        # default tolerance 25%: 1.6 → 1.3 is an allowed wobble
        report = compare_documents(telemetry_doc(), telemetry_doc(speedup=1.3))
        assert report.exit_code == EXIT_OK

    def test_overhead_over_bound_regression(self):
        report = compare_documents(
            telemetry_doc(), telemetry_doc(telemetry_overhead_ratio=0.12)
        )
        assert report.exit_code == EXIT_REGRESSION
        assert any(
            f.field == "telemetry_overhead_ratio" for f in report.regressions
        )

    def test_aggregates_flag_must_hold(self):
        report = compare_documents(
            telemetry_doc(), telemetry_doc(aggregates_identical=False)
        )
        assert report.exit_code == EXIT_REGRESSION

    def test_coverage_drop_regression(self):
        report = compare_documents(
            telemetry_doc(), telemetry_doc(attribution={"coverage": 0.7})
        )
        assert report.exit_code == EXIT_REGRESSION

    def test_obs_cycle_drift_is_exact(self):
        current = obs_doc()
        current["results"][0]["simulated_cycles"] = 1001
        report = compare_documents(obs_doc(), current)
        assert report.exit_code == EXIT_REGRESSION

    def test_per_attack_missing_in_current(self):
        current = attacks_doc(per_attack={})
        report = compare_documents(attacks_doc(), current)
        assert report.exit_code == EXIT_REGRESSION
        assert any(f.current == "missing" for f in report.regressions)

    def test_kernel_overhead_over_bound_regression(self):
        report = compare_documents(kernel_doc(), kernel_doc(batch_overhead_ratio=0.2))
        assert report.exit_code == EXIT_REGRESSION
        assert any(
            f.field == "batch_overhead_ratio" for f in report.regressions
        )

    def test_kernel_equivalence_flag_must_hold(self):
        report = compare_documents(
            kernel_doc(), kernel_doc(aggregates_identical=False)
        )
        assert report.exit_code == EXIT_REGRESSION

    def test_kernel_cycle_total_drift_is_exact(self):
        report = compare_documents(
            kernel_doc(), kernel_doc(simulated_cycles_total=4_600_000_001)
        )
        assert report.exit_code == EXIT_REGRESSION
        assert any(f.field == "simulated_cycles_total" for f in report.regressions)

    def test_kernel_speedup_regression(self):
        report = compare_documents(kernel_doc(), kernel_doc(batch_speedup=0.5))
        assert report.exit_code == EXIT_REGRESSION

    def test_serve_latency_blowup_regression(self):
        report = compare_documents(
            serve_doc(), serve_doc(warm_aggregate_p50_seconds=0.004)
        )
        assert report.exit_code == EXIT_REGRESSION
        assert any(
            "warm_aggregate_p50_seconds" == f.field for f in report.regressions
        )

    def test_serve_budget_is_absolute_not_relative(self):
        # Within tolerance of the (slow) baseline but over the 10 ms
        # budget: the absolute contract must still fail it.
        baseline = serve_doc(
            warm_aggregate_p50_seconds=0.011,
            verification={
                "aggregate_complete": True,
                "warm_under_budget": False,
                "etag_revalidates": True,
            },
        )
        report = compare_documents(baseline, baseline)
        fields = {f.field for f in report.regressions}
        assert "warm_aggregate_p50_seconds.budget" in fields
        assert "verification.warm_under_budget" in fields

    def test_serve_cache_ratio_drop_regression(self):
        report = compare_documents(serve_doc(), serve_doc(cache={"hit_ratio": 0.5}))
        assert report.exit_code == EXIT_REGRESSION

    def test_serve_revalidation_flag_must_hold(self):
        broken = serve_doc(
            verification={
                "aggregate_complete": True,
                "warm_under_budget": True,
                "etag_revalidates": False,
            }
        )
        report = compare_documents(serve_doc(), broken)
        assert any(
            f.field == "verification.etag_revalidates" for f in report.regressions
        )

    def test_wall_seconds_blowup_regression(self):
        report = compare_documents(
            telemetry_doc(), telemetry_doc(parallel_wall_seconds=20.0)
        )
        assert report.exit_code == EXIT_REGRESSION


class TestRefusals:
    def test_kind_mismatch(self):
        report = compare_documents(telemetry_doc(), attacks_doc())
        assert report.exit_code == EXIT_USAGE
        assert "kinds differ" in report.refusal

    def test_schema_mismatch(self):
        report = compare_documents(telemetry_doc(), telemetry_doc(schema=2))
        assert report.exit_code == EXIT_USAGE
        assert "schema versions differ" in report.refusal

    def test_unrecognized_artifact(self):
        report = compare_documents({"foo": 1}, telemetry_doc())
        assert report.exit_code == EXIT_USAGE
        assert "unrecognized" in report.refusal

    def test_missing_provenance_refused(self):
        bare = telemetry_doc()
        del bare["provenance"]
        report = compare_documents(bare, telemetry_doc())
        assert report.exit_code == EXIT_USAGE
        assert "--allow-cross-machine" in report.refusal

    def test_cross_machine_refused_with_field_diff(self):
        other = telemetry_doc()
        other["provenance"]["hostname"] = "some-other-box"
        report = compare_documents(telemetry_doc(), other)
        assert report.exit_code == EXIT_USAGE
        assert "hostname" in report.refusal
        assert "--allow-cross-machine" in report.refusal

    def test_allow_cross_machine_proceeds(self):
        other = telemetry_doc()
        other["provenance"]["hostname"] = "some-other-box"
        report = compare_documents(
            telemetry_doc(), other, allow_cross_machine=True
        )
        assert report.refusal is None
        assert report.exit_code == EXIT_OK

    def test_unreadable_file_refused(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(telemetry_doc()))
        report = compare_files(str(tmp_path / "missing.json"), str(good))
        assert report.exit_code == EXIT_USAGE
        assert "cannot load" in report.refusal

    def test_malformed_json_refused(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = tmp_path / "good.json"
        good.write_text(json.dumps(telemetry_doc()))
        assert compare_files(str(bad), str(good)).exit_code == EXIT_USAGE


class TestProvenance:
    def test_stamp_fields(self):
        stamp = provenance()
        for key in ("git_rev", "timestamp", "python", "platform", "hostname", "cpu_count"):
            assert key in stamp

    def test_identity_slice(self):
        ident = identity(provenance())
        assert set(ident) == {"hostname", "platform", "python", "cpu_count"}
        assert identity(None) is None
        assert identity("nope") is None

    def test_committed_artifacts_are_stamped(self):
        """Every BENCH_*.json in the repo must carry a provenance stamp."""
        repo = Path(__file__).resolve().parent.parent
        artifacts = sorted(repo.glob("BENCH_*.json"))
        assert artifacts, "expected committed BENCH_*.json baselines"
        for path in artifacts:
            doc = json.loads(path.read_text())
            assert identity(doc.get("provenance")) is not None, path.name
            assert "schema" in doc, path.name


class TestCompareReport:
    def test_render_text_verdicts(self):
        doc = telemetry_doc()
        ok_text = compare_documents(doc, doc).render_text()
        assert "no regressions" in ok_text
        bad = compare_documents(doc, telemetry_doc(speedup=0.5)).render_text()
        assert "FAIL" in bad and "regression(s)" in bad
        refused = compare_documents(doc, attacks_doc()).render_text()
        assert refused.startswith("bench compare: REFUSED")

    def test_as_dict_shape(self):
        report = compare_documents(telemetry_doc(), telemetry_doc(speedup=0.5))
        data = report.as_dict()
        assert data["kind"] == "telemetry"
        assert data["regressions"] >= 1
        json.dumps(data)


class TestCli:
    def run_cli(self, *argv: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro", "bench", "compare", *argv],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )

    def test_cli_self_compare_exit_zero(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        path.write_text(json.dumps(telemetry_doc()))
        proc = self.run_cli(str(path), str(path))
        assert proc.returncode == EXIT_OK, proc.stderr
        assert "no regressions" in proc.stdout

    def test_cli_regression_exit_one(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(telemetry_doc()))
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(telemetry_doc(speedup=0.5)))
        proc = self.run_cli(str(base), str(cur))
        assert proc.returncode == EXIT_REGRESSION
        assert "FAIL" in proc.stdout

    def test_cli_refusal_exit_two(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(telemetry_doc()))
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(attacks_doc()))
        proc = self.run_cli(str(base), str(cur))
        assert proc.returncode == EXIT_USAGE
        assert "REFUSED" in proc.stdout

    def test_cli_json_format(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        path.write_text(json.dumps(telemetry_doc()))
        proc = self.run_cli(str(path), str(path), "--format", "json")
        assert proc.returncode == EXIT_OK
        data = json.loads(proc.stdout)
        assert data["kind"] == "telemetry"
        assert data["refusal"] is None
