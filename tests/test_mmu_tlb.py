"""Tests for the TLB: residency, LRU, ASID tagging, global pages."""

import pytest

from repro.mmu.address_space import AddressSpace
from repro.mmu.page_table import PhysicalMemory
from repro.mmu.tlb import TLB
from repro.params import PAGE_SIZE
from repro.utils.rng import make_rng


@pytest.fixture
def physical():
    return PhysicalMemory(make_rng(0))


@pytest.fixture
def tlb():
    return TLB(n_entries=4, walk_latency=120)


def make_space(physical, name="proc", global_pages=False):
    return AddressSpace(name, physical, global_pages=global_pages)


class TestTranslate:
    def test_miss_then_hit(self, tlb, physical):
        space = make_space(physical)
        mapping = space.mmap(PAGE_SIZE)
        first = tlb.translate(space, mapping.base)
        assert not first.tlb_hit
        assert first.latency == 120
        second = tlb.translate(space, mapping.base + 8)
        assert second.tlb_hit
        assert second.latency == 0
        assert second.paddr == first.paddr + 8

    def test_unmapped_page_faults(self, tlb, physical):
        space = make_space(physical)
        with pytest.raises(KeyError):
            tlb.translate(space, 0xDEAD_0000)

    def test_capacity_eviction_is_lru(self, tlb, physical):
        space = make_space(physical)
        mapping = space.mmap(5 * PAGE_SIZE)
        pages = [mapping.base + i * PAGE_SIZE for i in range(5)]
        for page in pages[:4]:
            tlb.translate(space, page)
        tlb.translate(space, pages[0])  # refresh oldest
        tlb.translate(space, pages[4])  # evicts pages[1]
        assert tlb.is_resident(space, pages[0])
        assert not tlb.is_resident(space, pages[1])


class TestAsidTagging:
    def test_same_vaddr_different_spaces(self, tlb, physical):
        a = make_space(physical, "a")
        b = make_space(physical, "b")
        ma = a.mmap(PAGE_SIZE)
        # Force the same virtual page in b by translating its own page.
        mb = b.mmap(PAGE_SIZE)
        tlb.translate(a, ma.base)
        assert not tlb.is_resident(b, mb.base)


class TestFlushSemantics:
    def test_flush_drops_user_entries(self, tlb, physical):
        space = make_space(physical)
        mapping = space.mmap(PAGE_SIZE)
        tlb.translate(space, mapping.base)
        tlb.flush(keep_global=True)
        assert not tlb.is_resident(space, mapping.base)

    def test_global_pages_survive_flush(self, tlb, physical):
        kernel = make_space(physical, "kernel", global_pages=True)
        mapping = kernel.mmap(PAGE_SIZE)
        tlb.translate(kernel, mapping.base)
        tlb.flush(keep_global=True)
        assert tlb.is_resident(kernel, mapping.base)

    def test_full_flush_drops_global_too(self, tlb, physical):
        kernel = make_space(physical, "kernel", global_pages=True)
        mapping = kernel.mmap(PAGE_SIZE)
        tlb.translate(kernel, mapping.base)
        tlb.flush(keep_global=False)
        assert not tlb.is_resident(kernel, mapping.base)

    def test_invlpg(self, tlb, physical):
        space = make_space(physical)
        mapping = space.mmap(2 * PAGE_SIZE)
        tlb.translate(space, mapping.base)
        tlb.translate(space, mapping.base + PAGE_SIZE)
        tlb.invalidate_page(space, mapping.base)
        assert not tlb.is_resident(space, mapping.base)
        assert tlb.is_resident(space, mapping.base + PAGE_SIZE)


class TestWarm:
    def test_warm_installs_without_latency(self, tlb, physical):
        space = make_space(physical)
        mapping = space.mmap(PAGE_SIZE)
        tlb.warm(space, mapping.base)
        assert tlb.translate(space, mapping.base).tlb_hit

    def test_warm_unmapped_faults(self, tlb, physical):
        space = make_space(physical)
        with pytest.raises(KeyError):
            tlb.warm(space, 0xBAD_0000)

    def test_stats(self, tlb, physical):
        space = make_space(physical)
        mapping = space.mmap(PAGE_SIZE)
        tlb.translate(space, mapping.base)
        tlb.translate(space, mapping.base)
        assert tlb.misses == 1
        assert tlb.hits == 1
