"""Tests for the SGX enclave model."""

import pytest

from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700, HASWELL_I7_4770, PAGE_SIZE
from repro.sgx.enclave import Enclave, StrideSecretEnclave


@pytest.fixture
def machine():
    return Machine(COFFEE_LAKE_I7_9700.quiet(), seed=9)


@pytest.fixture
def untrusted(machine):
    ctx = machine.new_thread("untrusted")
    machine.context_switch(ctx)
    return ctx


class TestEnclaveBasics:
    def test_requires_sgx_machine(self):
        no_sgx = Machine(HASWELL_I7_4770.quiet(), seed=0)
        with pytest.raises(RuntimeError):
            Enclave(no_sgx)

    def test_ecall_dispatch(self, machine, untrusted):
        enclave = Enclave(machine)
        enclave.register_ecall("f", lambda x: x * 2)
        assert enclave.ecall(untrusted, "f", 21) == 42

    def test_unknown_ecall(self, machine, untrusted):
        with pytest.raises(KeyError):
            Enclave(machine).ecall(untrusted, "nope")

    def test_duplicate_ecall_rejected(self, machine):
        enclave = Enclave(machine)
        enclave.register_ecall("f", lambda: 0)
        with pytest.raises(ValueError):
            enclave.register_ecall("f", lambda: 1)

    def test_ecall_returns_to_caller(self, machine, untrusted):
        enclave = Enclave(machine)
        enclave.register_ecall("f", lambda: None)
        enclave.ecall(untrusted, "f")
        assert machine.current is untrusted

    def test_enclave_space_is_private(self, machine, untrusted):
        enclave = Enclave(machine)
        assert enclave.space is not untrusted.space

    def test_map_untrusted_shares_frames(self, machine, untrusted):
        enclave = Enclave(machine)
        buffer = machine.new_buffer(untrusted.space, PAGE_SIZE)
        view = enclave.map_untrusted(buffer)
        assert view.mapping.frames() == buffer.mapping.frames()


class TestSharedMicroarchitecture:
    def test_enclave_loads_share_prefetcher(self, machine, untrusted):
        """§4.6: the IP-stride prefetcher is shared with the enclave."""
        enclave = Enclave(machine)
        buffer = machine.new_buffer(untrusted.space, PAGE_SIZE)
        view = enclave.map_untrusted(buffer)
        ip = enclave.text.place("walk", 0x100)

        def walk():
            machine.warm_buffer_tlb(enclave.ctx, view)
            for i in range(4):
                machine.load(enclave.ctx, ip, view.line_addr(i * 7))

        enclave.register_ecall("walk", walk)
        enclave.ecall(untrusted, "walk")
        entry = machine.ip_stride.entry_for_ip(ip)
        assert entry is not None
        assert entry.confidence >= 2

    def test_prefetched_lines_survive_eexit(self, machine, untrusted):
        """§4.6: 'we always get a cache hit for the prefetched cache line'."""
        enclave = StrideSecretEnclave(machine, secret=1)
        buffer = machine.new_buffer(untrusted.space, PAGE_SIZE)
        machine.flush_buffer(untrusted, buffer)
        enclave.run(untrusted, buffer)
        prefetched = buffer.line_addr(
            StrideSecretEnclave.N_TRAIN_LOADS * StrideSecretEnclave.STRIDE_IF_SECRET_SET
        )
        assert machine.is_cached(untrusted, prefetched)


class TestStrideSecretEnclave:
    @pytest.mark.parametrize("secret,stride", [(1, 3), (0, 5)])
    def test_stride_encodes_secret(self, machine, untrusted, secret, stride):
        enclave = StrideSecretEnclave(machine, secret=secret)
        buffer = machine.new_buffer(untrusted.space, PAGE_SIZE)
        machine.flush_buffer(untrusted, buffer)
        enclave.run(untrusted, buffer)
        entry = machine.ip_stride.entry_for_ip(enclave.load_ip)
        assert entry.stride == stride * 64
