"""Edge-case tests that don't fit the per-module files."""

import pytest

from repro.core.covert import CovertChannelReport, CovertRoundResult
from repro.cpu.machine import Machine
from repro.memsys.hierarchy import MemoryLevel
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE


class TestCovertReport:
    def test_empty_report(self):
        report = CovertChannelReport(rounds=[], cycles=0, frequency_hz=3e9)
        assert report.error_rate == 0.0
        assert report.bandwidth_bps == 0.0

    def test_error_rate_counts_none_as_error(self):
        rounds = [
            CovertRoundResult(sent_value=7, received_value=7),
            CovertRoundResult(sent_value=7, received_value=None),
            CovertRoundResult(sent_value=7, received_value=9),
        ]
        report = CovertChannelReport(rounds=rounds, cycles=3_000_000, frequency_hz=3e9)
        assert report.error_rate == pytest.approx(2 / 3)
        assert report.seconds == pytest.approx(0.001)
        assert report.bandwidth_bps == pytest.approx(15 / 0.001)


class TestHierarchyStats:
    def test_reset_stats(self, quiet_machine, user_context):
        machine, ctx = quiet_machine, user_context
        buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, buf)
        for i in range(4):
            machine.load(ctx, 0x400010, buf.line_addr(i * 7))
        assert machine.hierarchy.demand_accesses > 0
        machine.hierarchy.reset_stats()
        assert machine.hierarchy.demand_accesses == 0
        assert machine.hierarchy.prefetch_fills == 0
        assert machine.hierarchy.l1.hits == 0

    def test_prefetch_and_demand_counted_separately(self, quiet_machine, user_context):
        machine, ctx = quiet_machine, user_context
        buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, buf)
        machine.hierarchy.reset_stats()
        for i in range(5):
            machine.load(ctx, 0x400010, buf.line_addr(i * 7))
        assert machine.hierarchy.demand_accesses == 5
        assert machine.hierarchy.prefetch_fills >= 2  # conf 2+ accesses


class TestPrefetcherCounters:
    def test_issue_and_allocation_counters(self, quiet_machine, user_context):
        machine, ctx = quiet_machine, user_context
        buf = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, buf)
        pf = machine.ip_stride
        for i in range(5):
            machine.load(ctx, 0x400010, buf.line_addr(i * 7))
        assert pf.allocations == 1
        assert pf.prefetches_issued == 3  # accesses 3, 4, 5

    def test_clear_counter(self, quiet_machine):
        machine = quiet_machine
        machine.run_prefetcher_clear()
        machine.run_prefetcher_clear()
        assert machine.ip_stride.clears == 2


class TestKernelContext:
    def test_kernel_context_uses_kernel_space(self, quiet_machine):
        kctx = quiet_machine.kernel_context()
        assert kctx.privileged
        assert kctx.space is quiet_machine.kernel_space
        assert kctx.space.global_pages

    def test_kernel_load_path(self, quiet_machine):
        machine = quiet_machine
        kctx = machine.kernel_context()
        buf = machine.new_buffer(machine.kernel_space, PAGE_SIZE, locked=True)
        machine.context_switch(kctx)
        machine.warm_tlb(kctx, buf.base)
        latency = machine.load(kctx, 0xFFFF_8000_0123_4560, buf.base)
        assert latency >= machine.params.dram_latency


class TestAccessResult:
    def test_hit_property(self):
        from repro.memsys.hierarchy import AccessResult

        assert AccessResult(0, MemoryLevel.L1, 4).hit
        assert AccessResult(0, MemoryLevel.LLC, 42).hit
        assert not AccessResult(0, MemoryLevel.DRAM, 250).hit


class TestBufferSharingAcrossMachineHelpers:
    def test_share_buffer_roundtrip(self, quiet_machine):
        machine = quiet_machine
        a = machine.new_thread("a")
        b = machine.new_thread("b")
        machine.context_switch(a)
        original = machine.new_buffer(a.space, 2 * PAGE_SIZE)
        view = machine.share_buffer(original, b.space)
        machine.context_switch(b)
        machine.warm_tlb(b, view.base)
        machine.load(b, 0x400000, view.base)
        # The *physical* line is now cached: visible through both mappings.
        machine.context_switch(a)
        machine.warm_tlb(a, original.base)
        assert machine.load(a, 0x400008, original.base) < machine.hit_threshold()


class TestMachineRepr:
    def test_reprs_are_stable(self, quiet_machine, user_context):
        # Debug reprs shouldn't crash (they show up in test failures).
        repr(quiet_machine)
        repr(quiet_machine.ip_stride)
        repr(quiet_machine.hierarchy.l1)
        buf = quiet_machine.new_buffer(user_context.space, PAGE_SIZE)
        repr(buf)
        repr(user_context.space)
