"""Tests for CodeRegion/IP matching, the scheduler and the timing model."""

import pytest

from repro.cpu.code import CodeRegion, match_low_bits
from repro.cpu.scheduler import Scheduler
from repro.cpu.timing import TimingModel
from repro.params import COFFEE_LAKE_I7_9700, NoiseParams
from repro.utils.bits import low_bits
from repro.utils.rng import make_rng


class TestMatchLowBits:
    def test_basic_aliasing(self):
        ip = match_low_bits(0x600000, 0x4013A7)
        assert ip >= 0x600000
        assert low_bits(ip, 8) == 0xA7

    def test_within_one_stride_of_base(self):
        ip = match_low_bits(0x600000, 0x4013A7)
        assert ip - 0x600000 < 256

    def test_wider_match(self):
        ip = match_low_bits(0x600000, 0x401FA7, n_bits=12)
        assert low_bits(ip, 12) == 0xFA7


class TestCodeRegion:
    def test_place_and_lookup(self):
        region = CodeRegion(0x400000)
        ip = region.place("load_a", 0x120)
        assert ip == 0x400120
        assert region.ip("load_a") == ip

    def test_duplicate_label_rejected(self):
        region = CodeRegion(0x400000)
        region.place("x", 0)
        with pytest.raises(ValueError):
            region.place("x", 8)

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            CodeRegion(0x400000).ip("nope")

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            CodeRegion(0x400000).place("x", -4)

    def test_place_aliasing(self):
        region = CodeRegion(0x600000)
        target = 0x4013A7
        ip = region.place_aliasing("masq", target)
        assert low_bits(ip, 8) == low_bits(target, 8)

    def test_place_aliasing_twice_distinct_ips(self):
        region = CodeRegion(0x600000)
        a = region.place_aliasing("m1", 0x4013A7)
        b = region.place_aliasing("m2", 0x4013A7)
        assert a != b
        assert low_bits(a, 8) == low_bits(b, 8)

    def test_place_aliasing_thousand_copies(self):
        """~1k aliased copies stay distinct, aligned, and 256 bytes apart.

        Regression test for the quadratic `candidate in labels.values()`
        probe: with 1000 copies this finishes instantly on the set-based
        implementation and took visible seconds on the old linear scan.
        """
        region = CodeRegion(0x600000)
        target = 0x4013A7
        ips = [region.place_aliasing(f"m{i}", target) for i in range(1000)]
        assert len(set(ips)) == 1000
        assert all(low_bits(ip, 8) == low_bits(target, 8) for ip in ips)
        assert sorted(ips) == [ips[0] + 256 * i for i in range(1000)]

    def test_place_aliasing_skips_directly_placed_ip(self):
        region = CodeRegion(0x600000)
        taken = region.place("direct", 0xA7)
        aliased = region.place_aliasing("masq", 0x4013A7)
        assert aliased == taken + 256
        assert low_bits(aliased, 8) == 0xA7

    def test_aslr_slide_preserves_low_bits(self, quiet_machine):
        region = quiet_machine.code_region(0x400ABC)
        assert low_bits(region.base, 12) == 0xABC

    def test_labels_copy(self):
        region = CodeRegion(0x400000)
        region.place("a", 0)
        labels = region.labels()
        labels["b"] = 1
        assert "b" not in region.labels()


class TestScheduler:
    def test_round_robin_yield(self, quiet_machine):
        a = quiet_machine.new_thread("a")
        b = quiet_machine.new_thread("b")
        sched = Scheduler(quiet_machine, [a, b])
        assert sched.running is a
        assert sched.sched_yield() is b
        assert sched.sched_yield() is a

    def test_yield_performs_context_switch(self, quiet_machine):
        a = quiet_machine.new_thread("a")
        b = quiet_machine.new_thread("b")
        sched = Scheduler(quiet_machine, [a, b])
        before = quiet_machine.context_switches
        sched.sched_yield()
        assert quiet_machine.context_switches == before + 1

    def test_switch_to(self, quiet_machine):
        a = quiet_machine.new_thread("a")
        b = quiet_machine.new_thread("b")
        c = quiet_machine.new_thread("c")
        sched = Scheduler(quiet_machine, [a, b, c])
        sched.switch_to(c)
        assert sched.running is c
        assert quiet_machine.current is c

    def test_switch_to_unmanaged_rejected(self, quiet_machine):
        a = quiet_machine.new_thread("a")
        stranger = quiet_machine.new_thread("stranger")
        sched = Scheduler(quiet_machine, [a])
        with pytest.raises(ValueError):
            sched.switch_to(stranger)

    def test_run_quantum_advances_clock(self, quiet_machine):
        a = quiet_machine.new_thread("a")
        sched = Scheduler(quiet_machine, [a], quantum_cycles=1000)
        before = quiet_machine.cycles
        sched.run_quantum()
        assert quiet_machine.cycles == before + 1000

    def test_empty_context_list_rejected(self, quiet_machine):
        with pytest.raises(ValueError):
            Scheduler(quiet_machine, [])


class TestTimingModel:
    def test_noise_free_is_exact(self):
        quiet = COFFEE_LAKE_I7_9700.quiet().noise
        model = TimingModel(quiet, make_rng(0))
        assert all(model.measured(42) == 42 for _ in range(50))

    def test_noise_is_zero_mean_ish(self):
        model = TimingModel(NoiseParams(timing_sigma=3.0, timing_spike_prob=0.0), make_rng(0))
        samples = [model.measured(100) for _ in range(2000)]
        assert 99 < sum(samples) / len(samples) < 101

    def test_latency_never_below_one(self):
        model = TimingModel(NoiseParams(timing_sigma=50.0, timing_spike_prob=0.0), make_rng(0))
        assert all(model.measured(2) >= 1 for _ in range(200))

    def test_spikes_occur(self):
        model = TimingModel(
            NoiseParams(timing_sigma=0.0, timing_spike_prob=0.5, timing_spike_cycles=180),
            make_rng(0),
        )
        samples = [model.measured(10) for _ in range(100)]
        assert any(s > 100 for s in samples)
        assert any(s == 10 for s in samples)
