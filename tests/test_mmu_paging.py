"""Tests for physical memory, page tables, address spaces and buffers."""

import pytest

from repro.mmu.address_space import AddressSpace
from repro.mmu.aslr import Aslr
from repro.mmu.buffer import Buffer
from repro.mmu.page_table import PageTable, PhysicalMemory
from repro.params import PAGE_SIZE
from repro.utils.rng import make_rng


@pytest.fixture
def physical():
    return PhysicalMemory(make_rng(0))


@pytest.fixture
def space(physical):
    return AddressSpace("proc", physical)


class TestPhysicalMemory:
    def test_frames_unique(self, physical):
        frames = {physical.alloc_frame() for _ in range(500)}
        assert len(frames) == 500

    def test_zero_frame_reserved(self, physical):
        assert physical.ZERO_FRAME == 0
        for _ in range(100):
            assert physical.alloc_frame() != 0

    def test_free_and_realloc(self, physical):
        frame = physical.alloc_frame()
        count = physical.allocated_count
        physical.free_frame(frame)
        assert physical.allocated_count == count - 1

    def test_zero_frame_never_freed(self, physical):
        physical.free_frame(0)
        assert physical.allocated_count >= 1

    def test_frame_to_paddr(self):
        assert PhysicalMemory.frame_to_paddr(2, 5) == 2 * PAGE_SIZE + 5
        with pytest.raises(ValueError):
            PhysicalMemory.frame_to_paddr(1, PAGE_SIZE)


class TestPageTable:
    def test_translate(self):
        table = PageTable()
        table.map(5, 77)
        assert table.translate(5 * PAGE_SIZE + 123) == 77 * PAGE_SIZE + 123

    def test_unmapped_faults(self):
        with pytest.raises(KeyError):
            PageTable().translate(0x1000)

    def test_remap_allowed(self):
        table = PageTable()
        table.map(1, 10)
        table.map(1, 20)  # CoW promotion
        assert table.frame_of(1) == 20

    def test_unmap(self):
        table = PageTable()
        table.map(1, 10)
        assert table.unmap(1) == 10
        assert not table.is_mapped(1)
        assert table.unmap(1) is None


class TestAddressSpaceMmap:
    def test_mmap_rounds_to_pages(self, space):
        mapping = space.mmap(100)
        assert mapping.n_pages == 1
        assert mapping.size == PAGE_SIZE

    def test_populated_pages_have_distinct_frames(self, space):
        mapping = space.mmap(4 * PAGE_SIZE)
        frames = mapping.frames()
        assert len(set(frames)) == 4
        assert PhysicalMemory.ZERO_FRAME not in frames

    def test_unpopulated_pages_share_zero_frame(self, space):
        """The 'reclaimable pool' of the paper's Table 1."""
        mapping = space.mmap(4 * PAGE_SIZE, populate=False)
        assert mapping.frames() == [PhysicalMemory.ZERO_FRAME] * 4

    def test_locked_pages_are_backed(self, space):
        mapping = space.mmap(2 * PAGE_SIZE, locked=True, populate=False)
        assert PhysicalMemory.ZERO_FRAME not in mapping.frames()

    def test_write_promotes_zero_page(self, space):
        mapping = space.mmap(2 * PAGE_SIZE, populate=False)
        space.write_touch(mapping.base)
        frames = mapping.frames()
        assert frames[0] != PhysicalMemory.ZERO_FRAME
        assert frames[1] == PhysicalMemory.ZERO_FRAME

    def test_mappings_do_not_overlap(self, space):
        a = space.mmap(3 * PAGE_SIZE)
        b = space.mmap(3 * PAGE_SIZE)
        assert a.end <= b.base or b.end <= a.base

    def test_mapping_addr_bounds(self, space):
        mapping = space.mmap(PAGE_SIZE)
        with pytest.raises(IndexError):
            mapping.addr(PAGE_SIZE)

    def test_munmap_releases(self, space, physical):
        mapping = space.mmap(2 * PAGE_SIZE)
        before = physical.allocated_count
        space.munmap(mapping)
        assert physical.allocated_count == before - 2
        with pytest.raises(KeyError):
            space.translate(mapping.base)

    def test_munmap_foreign_mapping_rejected(self, space, physical):
        other = AddressSpace("other", physical)
        mapping = other.mmap(PAGE_SIZE)
        with pytest.raises(ValueError):
            space.munmap(mapping)


class TestSharedMemory:
    def test_map_shared_same_frames(self, physical):
        a = AddressSpace("a", physical)
        b = AddressSpace("b", physical)
        original = a.mmap(2 * PAGE_SIZE, name="shm")
        view = b.map_shared(original)
        assert view.frames() == original.frames()
        assert view.space is b
        assert original.space is a

    def test_shared_translation_agrees(self, physical):
        a = AddressSpace("a", physical)
        b = AddressSpace("b", physical)
        original = a.mmap(PAGE_SIZE)
        view = b.map_shared(original)
        assert a.translate(original.base + 17) == b.translate(view.base + 17)


class TestAslr:
    def test_disabled_is_identity(self):
        aslr = Aslr(make_rng(0), enabled=False)
        assert aslr.randomize_base(0x400000) == 0x400000

    def test_slide_is_page_aligned(self):
        aslr = Aslr(make_rng(0))
        base = 0x400123
        slid = aslr.randomize_base(base)
        assert (slid - base) % PAGE_SIZE == 0

    def test_low_12_bits_preserved(self):
        """The property AfterImage relies on (paper §5.2 footnote 4)."""
        aslr = Aslr(make_rng(1))
        for base in (0x400000, 0x400ABC, 0x7F00_1234):
            slid = aslr.randomize_base(base)
            assert Aslr.preserves_low_bits(base, slid, 12)
            assert Aslr.preserves_low_bits(base, slid, 8)

    def test_randomization_varies(self):
        aslr = Aslr(make_rng(2))
        slides = {aslr.randomize_base(0x400000) for _ in range(16)}
        assert len(slides) > 1


class TestBuffer:
    def test_line_addresses(self, space):
        buffer = Buffer(space.mmap(2 * PAGE_SIZE))
        assert buffer.n_lines == 128
        assert buffer.line_addr(1) - buffer.line_addr(0) == 64
        assert buffer.page_line_addr(1, 0) == buffer.base + PAGE_SIZE

    def test_bounds(self, space):
        buffer = Buffer(space.mmap(PAGE_SIZE))
        with pytest.raises(IndexError):
            buffer.line_addr(64)
        with pytest.raises(IndexError):
            buffer.page_line_addr(0, 64)
        with pytest.raises(IndexError):
            buffer.page_line_addr(1, 0)

    def test_lines_enumeration(self, space):
        buffer = Buffer(space.mmap(PAGE_SIZE))
        lines = buffer.lines()
        assert len(lines) == 64
        assert lines[0] == buffer.base
        assert lines[-1] == buffer.base + 63 * 64
