"""Tests for the N-way switch-arm leak (Figures 1-2 patterns)."""

import pytest

from repro.core.switch_leak import SwitchCaseLeak
from repro.cpu.machine import Machine
from repro.kernel.patterns import BatteryPropertySyscall, BluetoothTxSyscall
from repro.kernel.syscalls import Kernel
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.rng import make_rng


def build(machine, pattern_cls):
    kernel = Kernel(machine)
    pattern = pattern_cls(kernel)
    user = machine.new_thread("user")
    spy = machine.new_thread("spy")
    machine.context_switch(spy)
    leak = SwitchCaseLeak(machine, spy, pattern.case_ips)
    return pattern, user, spy, leak


class TestBluetoothLeak:
    def test_every_arm_identified(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=200)
        bt, user, spy, leak = build(machine, BluetoothTxSyscall)
        for pkt in bt.PACKET_TYPES:
            def victim(pkt=pkt):
                machine.context_switch(user)
                bt.send_frame(user, pkt)
                machine.context_switch(spy)
                return pkt

            result = leak.run_round(victim)
            assert result.success, (pkt, result)

    def test_no_arm_executed_is_clean(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=201)
        _bt, user, spy, leak = build(machine, BluetoothTxSyscall)

        def idle_victim():
            machine.context_switch(user)
            machine.advance(10_000)
            machine.context_switch(spy)
            return None

        result = leak.run_round(idle_victim)
        assert result.disturbed_arms == []
        assert result.inferred_arm is None


class TestBatteryLeak:
    def test_four_way_switch(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=202)
        battery, user, spy, leak = build(machine, BatteryPropertySyscall)
        rng = make_rng(0)
        for _ in range(8):
            prop = battery.PROPERTIES[int(rng.integers(0, 4))]

            def victim(prop=prop):
                machine.context_switch(user)
                battery.get_property(user, prop)
                machine.context_switch(spy)
                return prop

            assert leak.run_round(victim).success

    def test_noisy_success_rate(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=203)
        battery, user, spy, leak = build(machine, BatteryPropertySyscall)
        rng = make_rng(1)
        ok = 0
        rounds = 40
        for _ in range(rounds):
            prop = battery.PROPERTIES[int(rng.integers(0, 4))]

            def victim(prop=prop):
                machine.context_switch(user)
                battery.get_property(user, prop)
                machine.context_switch(spy)
                return prop

            # The kernel path clobbers extra arms; intersecting a few
            # repeated queries isolates the true one.
            ok += leak.run_with_retries(victim, attempts=3).success
        assert ok >= rounds * 0.85


class TestValidation:
    def test_empty_arms_rejected(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=204)
        spy = machine.new_thread("spy")
        machine.context_switch(spy)
        with pytest.raises(ValueError):
            SwitchCaseLeak(machine, spy, {})

    def test_aliasing_arms_rejected(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=205)
        spy = machine.new_thread("spy")
        machine.context_switch(spy)
        with pytest.raises(ValueError):
            SwitchCaseLeak(machine, spy, {"a": 0x400010, "b": 0x500010})

    def test_too_many_arms_rejected(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=206)
        spy = machine.new_thread("spy")
        machine.context_switch(spy)
        arms = {f"arm{i}": 0x400000 + i for i in range(9)}
        with pytest.raises(ValueError):
            SwitchCaseLeak(machine, spy, arms)
