"""Smoke tests: the example scripts must run and print their headlines.

Only the fast examples run under pytest; the longer ones (covert_channel,
defense_evaluation, leak_rsa_key with default size) are exercised by their
own attack tests and by hand.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "accuracy: 8/8" in out

    def test_sgx_leak(self):
        out = run_example("sgx_leak.py")
        assert "attacker infers secret = 0  [correct]" in out
        assert "attacker infers secret = 1  [correct]" in out

    def test_reverse_engineer(self):
        out = run_example("reverse_engineer.py")
        assert "24-entry table" in out
        assert "Bit-PLRU-like" in out

    def test_reverse_engineer_haswell(self):
        out = run_example("reverse_engineer.py", "--machine", "i7-4770")
        assert "i7-4770" in out
        assert "no SGX" in out

    def test_leak_rsa_key_small(self):
        out = run_example("leak_rsa_key.py", "--bits", "64")
        assert "recovered d == true d:     True" in out

    def test_trace_attack(self, tmp_path):
        out = tmp_path / "run.trace.json"
        stdout = run_example("trace_attack.py", "--rounds", "4", "--out", str(out))
        assert "cycle attribution by phase" in stdout
        assert "TableTransition" in stdout
        assert out.exists()

    def test_perf_timeline(self, tmp_path):
        out = tmp_path / "perf.trace.json"
        stdout = run_example(
            "perf_timeline.py", "--rounds-scale", "0.05", "--out", str(out)
        )
        assert "where the time went" in stdout
        assert "dominant overhead bucket" in stdout
        assert out.exists()

    def test_static_leakcheck(self):
        out = run_example("static_leakcheck.py")
        assert "verdict: leaky" in out
        assert "verdicts agree" in out
        assert "password-check=safe" in out

    @pytest.mark.slow
    def test_power_attack_assist(self):
        out = run_example("power_attack_assist.py")
        assert "LEAKS" in out
