"""Tests for the kernel substrate: syscalls, privilege, victim patterns."""

import pytest

from repro.kernel.patterns import BatteryPropertySyscall, BluetoothTxSyscall
from repro.kernel.syscalls import Kernel, VulnerableSyscall
from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits


@pytest.fixture
def kernel(quiet_machine):
    return Kernel(quiet_machine)


@pytest.fixture
def user(quiet_machine):
    ctx = quiet_machine.new_thread("user")
    quiet_machine.context_switch(ctx)
    return ctx


class TestSyscallDispatch:
    def test_register_and_invoke(self, kernel, user):
        calls = []
        number = kernel.register(lambda x: calls.append(x) or 42)
        assert kernel.syscall(user, number, "hello") == 42
        assert calls == ["hello"]

    def test_unknown_number_enosys(self, kernel, user):
        with pytest.raises(KeyError):
            kernel.syscall(user, 999)

    def test_duplicate_number_rejected(self, kernel):
        kernel.register(lambda: 0, number=400)
        with pytest.raises(ValueError):
            kernel.register(lambda: 1, number=400)

    def test_numbers_start_at_333(self, kernel):
        """The artifact's 'available system call number is 333'."""
        assert kernel.register(lambda: 0) == 333

    def test_returns_to_caller_context(self, kernel, user, quiet_machine):
        number = kernel.register(lambda: 0)
        kernel.syscall(user, number)
        assert quiet_machine.current is user

    def test_round_trip_recorded(self, kernel, user):
        number = kernel.register(lambda: 0)
        kernel.syscall(user, number)
        record = kernel.records[-1]
        assert record.number == number
        assert record.cycles_after > record.cycles_before

    def test_returns_even_if_handler_raises(self, kernel, user, quiet_machine):
        def boom():
            raise RuntimeError("EFAULT")

        number = kernel.register(boom)
        with pytest.raises(RuntimeError):
            kernel.syscall(user, number)
        assert quiet_machine.current is user

    def test_kaslr_preserves_low_12_bits_of_text(self, quiet_machine):
        kernel = Kernel(quiet_machine)
        from repro.kernel.syscalls import KERNEL_TEXT_BASE

        assert low_bits(kernel.text.base, 12) == low_bits(KERNEL_TEXT_BASE, 12)


class TestVulnerableSyscall:
    def test_taken_branch_loads_shared_memory(self, quiet_machine, user):
        kernel = Kernel(quiet_machine)
        syscall = VulnerableSyscall(kernel, secret_source=lambda: 1)
        memory_space = quiet_machine.new_buffer(user.space, PAGE_SIZE)
        syscall.invoke(user, memory_space, address_line=20)
        assert syscall.executions == [True]
        # The kernel's load went to the *shared* physical line.
        assert quiet_machine.is_cached(user, memory_space.line_addr(20))

    def test_untaken_branch_loads_nothing(self, quiet_machine, user):
        kernel = Kernel(quiet_machine)
        syscall = VulnerableSyscall(kernel, secret_source=lambda: 0)
        memory_space = quiet_machine.new_buffer(user.space, PAGE_SIZE)
        quiet_machine.flush_buffer(user, memory_space)
        syscall.invoke(user, memory_space, address_line=20)
        assert syscall.executions == [False]
        assert not quiet_machine.is_cached(user, memory_space.line_addr(20))

    def test_taken_branch_triggers_trained_prefetcher(self, quiet_machine, user):
        """The Variant-2 mechanism end to end, without the IP search."""
        m = quiet_machine
        kernel = Kernel(m)
        syscall = VulnerableSyscall(kernel, secret_source=lambda: 1)
        memory_space = m.new_buffer(user.space, PAGE_SIZE)
        syscall.share_user_buffer(memory_space)
        train = m.new_buffer(user.space, PAGE_SIZE)
        m.warm_buffer_tlb(user, train)
        attacker_ip = 0x700000 + (syscall.load_ip - 0x700000) % 256
        for i in range(3):
            m.load(user, attacker_ip, train.line_addr(i * 11))
        m.flush_buffer(user, memory_space)
        syscall.invoke(user, memory_space, address_line=20)
        assert m.is_cached(user, memory_space.line_addr(20 + 11))


class TestKernelPatterns:
    def test_bluetooth_case_ips_distinct(self, kernel):
        bt = BluetoothTxSyscall(kernel)
        indexes = {low_bits(ip, 8) for ip in bt.case_ips.values()}
        assert len(indexes) == len(bt.PACKET_TYPES)

    def test_bluetooth_counters(self, kernel, user):
        bt = BluetoothTxSyscall(kernel)
        bt.send_frame(user, "HCI_ACLDATA_PKT")
        bt.send_frame(user, "HCI_ACLDATA_PKT")
        bt.send_frame(user, "HCI_COMMAND_PKT")
        assert bt.counters["HCI_ACLDATA_PKT"] == 2
        assert bt.counters["HCI_COMMAND_PKT"] == 1

    def test_bluetooth_unknown_type(self, kernel, user):
        bt = BluetoothTxSyscall(kernel)
        with pytest.raises(ValueError):
            bt.send_frame(user, "HCI_BOGUS_PKT")

    def test_battery_properties(self, kernel, user):
        battery = BatteryPropertySyscall(kernel)
        battery.get_property(user, "PROP_CAPACITY")
        assert battery.queries == ["PROP_CAPACITY"]

    def test_battery_case_load_is_observable(self, quiet_machine, user):
        """Each switch arm loads at its own IP: trainable and leakable."""
        kernel = Kernel(quiet_machine)
        battery = BatteryPropertySyscall(kernel)
        battery.get_property(user, "PROP_SCOPE")
        entry = quiet_machine.ip_stride.entry_for_ip(battery.case_ips["PROP_SCOPE"])
        assert entry is not None
