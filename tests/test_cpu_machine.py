"""Tests for the Machine: load path, TLB integration, switches, mitigation."""

import pytest

from repro.cpu.machine import Machine
from repro.memsys.hierarchy import MemoryLevel
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE


class TestLoadPath:
    def test_cold_load_pays_dram_and_walk(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        latency = m.load(ctx, 0x400000, buf.base)
        assert latency == m.params.dram_latency + m.params.page_walk_latency

    def test_warm_load_hits_l1(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        m.load(ctx, 0x400000, buf.base)
        assert m.load(ctx, 0x400000, buf.base) == m.params.l1d.latency

    def test_tlb_miss_skips_prefetcher(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, 2 * PAGE_SIZE)
        m.load(ctx, 0x400000, buf.base)  # TLB miss: invisible
        assert m.ip_stride.entry_for_ip(0x400000) is None
        m.load(ctx, 0x400000, buf.base + 64)  # TLB hit: visible
        assert m.ip_stride.entry_for_ip(0x400000) is not None

    def test_training_and_trigger_through_machine(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        m.warm_buffer_tlb(ctx, buf)
        for i in range(4):
            m.load(ctx, 0x400010, buf.line_addr(i * 7))
        target = buf.line_addr(4 * 7 + 7)
        # Entry confident: next access prefetches current + stride.
        m.load(ctx, 0x400010, buf.line_addr(4 * 7))
        assert m.cached_level(ctx, target) is MemoryLevel.L2

    def test_fenced_load_invisible_to_prefetchers(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        m.warm_buffer_tlb(ctx, buf)
        for i in range(6):
            m.load(ctx, 0x400010, buf.line_addr(i), fenced=True)
        assert m.ip_stride.entry_for_ip(0x400010) is None
        # Sequential fenced loads must not wake the DCU/streamer either.
        assert m.hierarchy.prefetch_fills == 0

    def test_cycles_accumulate(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        before = m.cycles
        m.load(ctx, 0x400000, buf.base)
        assert m.cycles > before
        m.advance(100)
        assert ctx.cpu_cycles > 0

    def test_advance_rejects_negative(self, quiet_machine):
        with pytest.raises(ValueError):
            quiet_machine.advance(-1)


class TestClflush:
    def test_clflush_evicts(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        m.load(ctx, 0x400000, buf.base)
        m.clflush(ctx, buf.base)
        assert not m.is_cached(ctx, buf.base)

    def test_flush_buffer(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        for line in range(8):
            m.load(ctx, 0x400000 + line, buf.line_addr(line))
        m.flush_buffer(ctx, buf)
        assert all(not m.is_cached(ctx, addr) for addr in buf.lines())


class TestContextSwitching:
    def test_cross_space_switch_flushes_tlb(self, quiet_machine):
        m = quiet_machine
        a = m.new_thread("a")
        b = m.new_thread("b")
        m.context_switch(a)
        buf = m.new_buffer(a.space, PAGE_SIZE)
        m.warm_tlb(a, buf.base)
        m.context_switch(b)
        assert not m.tlb.is_resident(a.space, buf.base)

    def test_same_space_switch_keeps_tlb(self, quiet_machine):
        m = quiet_machine
        a = m.new_thread("a")
        b = m.new_thread("b", space=a.space)
        m.context_switch(a)
        buf = m.new_buffer(a.space, PAGE_SIZE)
        m.warm_tlb(a, buf.base)
        m.context_switch(b)
        assert m.tlb.is_resident(a.space, buf.base)

    def test_switch_to_self_is_noop(self, quiet_machine):
        m = quiet_machine
        a = m.new_thread("a")
        m.context_switch(a)
        switches = m.context_switches
        m.context_switch(a)
        assert m.context_switches == switches

    def test_prefetcher_survives_switch(self, quiet_machine):
        """Observation 1/2 of the paper: entries persist across switches."""
        m = quiet_machine
        a = m.new_thread("a")
        b = m.new_thread("b")
        m.context_switch(a)
        buf = m.new_buffer(a.space, PAGE_SIZE)
        m.warm_buffer_tlb(a, buf)
        for i in range(4):
            m.load(a, 0x400020, buf.line_addr(i * 7))
        m.context_switch(b)
        entry = m.ip_stride.entry_for_ip(0x400020)
        assert entry is not None
        assert entry.confidence == 3

    def test_kernel_pages_survive_cross_space_switch(self, quiet_machine):
        m = quiet_machine
        a = m.new_thread("a")
        b = m.new_thread("b")
        kctx = m.kernel_context()
        m.context_switch(a)
        kbuf = m.new_buffer(m.kernel_space, PAGE_SIZE, locked=True)
        m.warm_tlb(kctx, kbuf.base)
        m.context_switch(b)
        assert m.tlb.is_resident(m.kernel_space, kbuf.base)


class TestMitigation:
    def test_flush_on_switch_clears_prefetcher(self, quiet_machine):
        m = quiet_machine
        m.flush_prefetcher_on_switch = True
        a = m.new_thread("a")
        b = m.new_thread("b")
        m.context_switch(a)
        buf = m.new_buffer(a.space, PAGE_SIZE)
        m.warm_buffer_tlb(a, buf)
        for i in range(4):
            m.load(a, 0x400020, buf.line_addr(i * 7))
        m.context_switch(b)
        assert m.ip_stride.occupancy == 0

    def test_clear_instruction_costs_cycles(self, quiet_machine):
        m = quiet_machine
        before = m.cycles
        m.run_prefetcher_clear()
        assert m.cycles - before == m.params.prefetcher.n_entries


class TestNoiseInjection:
    def test_noisy_switch_pollutes_prefetcher(self):
        m = Machine(COFFEE_LAKE_I7_9700, seed=5)
        a = m.new_thread("a")
        b = m.new_thread("b")
        m.context_switch(a)
        before = m.ip_stride.allocations
        m.context_switch(b)
        assert m.ip_stride.allocations > before

    def test_timer_interrupts_fire_on_long_runs(self):
        m = Machine(COFFEE_LAKE_I7_9700, seed=5)
        ctx = m.new_thread("a")
        m.context_switch(ctx)
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        m.warm_buffer_tlb(ctx, buf)
        for i in range(3000):
            m.load(ctx, 0x500000, buf.line_addr(i % 64), fenced=True)
            m.clflush(ctx, buf.line_addr(i % 64))
        assert m.timer_interrupts > 0

    def test_quiet_machine_takes_no_timer_interrupts(self, quiet_machine, user_context):
        m, ctx = quiet_machine, user_context
        buf = m.new_buffer(ctx.space, PAGE_SIZE)
        m.warm_buffer_tlb(ctx, buf)
        for i in range(3000):
            m.load(ctx, 0x500000, buf.line_addr(i % 64), fenced=True)
        assert m.timer_interrupts == 0

    def test_seconds_conversion(self, quiet_machine):
        quiet_machine.advance(int(quiet_machine.params.frequency_hz))
        assert quiet_machine.seconds() == pytest.approx(1.0)

    def test_determinism_per_seed(self):
        latencies = []
        for _ in range(2):
            m = Machine(COFFEE_LAKE_I7_9700, seed=77)
            ctx = m.new_thread("a")
            m.context_switch(ctx)
            buf = m.new_buffer(ctx.space, PAGE_SIZE)
            m.warm_buffer_tlb(ctx, buf)
            latencies.append([m.load(ctx, 0x1234, buf.line_addr(i)) for i in range(32)])
        assert latencies[0] == latencies[1]
