"""Differential validation of repro.leakcheck (ISSUE 2, satellite 3).

Fifty seeded random single-bit gadgets across five families — secret-
dependent branch loads (two-sided and one-sided), oblivious double loads,
constant loads, and stride-encoding loops — are each classified statically
(`analyze`) and dynamically (`dynamic_leaky`, which runs the victim on the
simulated machine and reads the prefetcher back with PSC canaries and
footprint probes).  The two verdicts must agree on every gadget: the
static analyzer is only trustworthy if it neither misses a dynamically
demonstrable leak nor cries wolf on a dynamically silent victim.
"""

import pytest

from repro.leakcheck import analyze
from repro.leakcheck.dynamic import dynamic_leaky
from repro.leakcheck.trace import TraceLoad, VictimSpec
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE
from repro.utils.bits import low_bits
from repro.utils.rng import make_rng

VICTIM_CODE_BASE = 0x0040_0000

#: Victim stride palette, in lines: small and disjoint from the analyzer's
#: 7/11/13 canary palette so a victim stride can never masquerade as an
#: undisturbed canary.
VICTIM_STRIDES = (1, 2, 3, 4)


def _random_ips(rng, n):
    """``n`` victim load IPs with pairwise-distinct low 8 bits."""
    ips = []
    taken = set()
    while len(ips) < n:
        ip = VICTIM_CODE_BASE + int(rng.integers(0, 1 << 14))
        if low_bits(ip, 8) not in taken:
            taken.add(low_bits(ip, 8))
            ips.append(ip)
    return ips


def _random_line(rng):
    return int(rng.integers(0, PAGE_SIZE // CACHE_LINE_SIZE)) * CACHE_LINE_SIZE


def _spec(name, labels, trace_fn):
    return VictimSpec(
        name=name,
        description=f"random differential gadget {name}",
        secret_bits=1,
        labels=labels,
        region_pages={"data": 1},
        trace_fn=trace_fn,
    )


def branch_two_ips(seed):
    """if (bit) load A else load B — the canonical AfterImage victim."""
    rng = make_rng(seed)
    if_ip, else_ip = _random_ips(rng, 2)
    if_off, else_off = _random_line(rng), _random_line(rng)
    return _spec(
        f"branch-two-ips-{seed}",
        {"if_load": if_ip, "else_load": else_ip},
        lambda bit: [
            TraceLoad("if_load", "data", if_off)
            if bit
            else TraceLoad("else_load", "data", else_off)
        ],
    )


def branch_one_sided(seed):
    """if (bit) load A — square-and-multiply's shape."""
    rng = make_rng(seed)
    (ip,) = _random_ips(rng, 1)
    off = _random_line(rng)
    return _spec(
        f"branch-one-sided-{seed}",
        {"cond_load": ip},
        lambda bit: [TraceLoad("cond_load", "data", off)] if bit else [],
    )


def oblivious_pair(seed):
    """Both arms always execute — the classic constant-flow rewrite."""
    rng = make_rng(seed)
    if_ip, else_ip = _random_ips(rng, 2)
    if_off, else_off = _random_line(rng), _random_line(rng)
    return _spec(
        f"oblivious-{seed}",
        {"if_load": if_ip, "else_load": else_ip},
        lambda bit: [
            TraceLoad("if_load", "data", if_off),
            TraceLoad("else_load", "data", else_off),
        ],
    )


def constant(seed):
    """A secret-independent strided loop — ordinary innocent code."""
    rng = make_rng(seed)
    (ip,) = _random_ips(rng, 1)
    stride = VICTIM_STRIDES[int(rng.integers(0, len(VICTIM_STRIDES)))]
    return _spec(
        f"constant-{seed}",
        {"loop_load": ip},
        lambda bit: [
            TraceLoad("loop_load", "data", i * stride * CACHE_LINE_SIZE)
            for i in range(4)
        ],
    )


def stride_encode(seed):
    """One IP, stride chosen by the secret bit: both secrets leave a live
    entry, so only the *stride/footprint* divergence reveals the bit."""
    rng = make_rng(seed)
    (ip,) = _random_ips(rng, 1)
    s0 = VICTIM_STRIDES[int(rng.integers(0, len(VICTIM_STRIDES)))]
    s1 = s0
    while s1 == s0:
        s1 = VICTIM_STRIDES[int(rng.integers(0, len(VICTIM_STRIDES)))]
    return _spec(
        f"stride-encode-{seed}",
        {"loop_load": ip},
        lambda bit: [
            TraceLoad("loop_load", "data", i * (s1 if bit else s0) * CACHE_LINE_SIZE)
            for i in range(4)
        ],
    )


FAMILIES = {
    branch_two_ips: True,
    branch_one_sided: True,
    oblivious_pair: False,
    constant: False,
    stride_encode: True,
}

CASES = [
    pytest.param(family, seed, id=f"{family.__name__}-{seed}")
    for family in FAMILIES
    for seed in range(10)
]


class TestStaticDynamicAgreement:
    @pytest.mark.parametrize("family, seed", CASES)
    def test_verdicts_agree(self, family, seed):
        spec = family(seed)
        static = analyze(spec)
        dynamic = dynamic_leaky(spec, seed=seed)
        assert static.leaky == dynamic, (
            f"{spec.name}: static says {static.verdict}, "
            f"dynamic says {'leaky' if dynamic else 'safe'}"
        )
        assert static.leaky == FAMILIES[family]

    @pytest.mark.parametrize(
        "family", [branch_two_ips, stride_encode], ids=lambda f: f.__name__
    )
    def test_defended_gadgets_go_safe_statically(self, family):
        spec = family(0)
        for defense in ("tagged", "flush-on-switch"):
            assert not analyze(spec, defense=defense).leaky
