"""Differential check: extracted specs == hand-written registry specs.

Each class in :mod:`repro.leakcheck.extract.victim_sources` is a
natural-Python rendering of one registered victim.  Compiling those
sources through the static extractor and running the resulting
:class:`VictimSpec` objects through :func:`analyze` must reproduce the
hand-written victim's verdict matrix *exactly*, for every defense — the
front-end earns its keep only if it agrees with the ground truth on
every victim the repo already understands.
"""

import pytest

from repro.leakcheck.analyzer import DEFENSES, analyze
from repro.leakcheck.extract import victim_sources
from repro.leakcheck.extract.builder import compile_path
from repro.leakcheck.victims import get_victim

SOURCES_PATH = victim_sources.__file__


def verdict_matrix(spec):
    """Defense → verdict, with oblivious omitted when the spec lacks it."""
    matrix = {}
    for defense in DEFENSES:
        if defense == "oblivious" and spec.oblivious_fn is None:
            matrix[defense] = "unavailable"
            continue
        matrix[defense] = analyze(spec, defense=defense).verdict
    return matrix


@pytest.fixture(scope="module")
def extracted():
    """qualname → Extraction, compiled once for the whole module."""
    results = {e.qualname: e for e in compile_path(SOURCES_PATH)}
    return results


def test_every_equivalent_compiles(extracted):
    for qualname in victim_sources.REGISTRY_EQUIVALENTS:
        extraction = extracted.get(qualname)
        assert extraction is not None, f"{qualname} not discovered as a candidate"
        assert extraction.error is None, f"{qualname}: {extraction.error}"
        assert extraction.spec is not None


def test_no_unexpected_candidates(extracted):
    unexpected = set(extracted) - set(victim_sources.REGISTRY_EQUIVALENTS)
    assert not unexpected, (
        f"victim_sources grew candidates without registry equivalents: "
        f"{sorted(unexpected)}"
    )


@pytest.mark.parametrize(
    "qualname,registered_name",
    sorted(victim_sources.REGISTRY_EQUIVALENTS.items()),
)
def test_verdict_matrices_match(extracted, qualname, registered_name):
    extraction = extracted[qualname]
    registered = get_victim(registered_name).spec
    expected = verdict_matrix(registered)
    actual = verdict_matrix(extraction.spec)
    assert actual == expected, (
        f"{qualname} vs {registered_name}: extracted {actual}, "
        f"hand-written {expected}"
    )


@pytest.mark.parametrize(
    "qualname,registered_name",
    sorted(victim_sources.REGISTRY_EQUIVALENTS.items()),
)
def test_secret_widths_match(extracted, qualname, registered_name):
    extraction = extracted[qualname]
    registered = get_victim(registered_name).spec
    assert extraction.spec.secret_bits == registered.secret_bits


@pytest.mark.parametrize(
    "qualname,registered_name",
    sorted(victim_sources.REGISTRY_EQUIVALENTS.items()),
)
def test_leaky_bits_match_under_none(extracted, qualname, registered_name):
    """Beyond the verdict: the *set of leaking bits* must agree too."""
    extraction = extracted[qualname]
    registered = get_victim(registered_name).spec
    ours = analyze(extraction.spec, defense="none")
    theirs = analyze(registered, defense="none")
    assert set(ours.leaky_bits) == set(theirs.leaky_bits)
