"""Tests for the `afterimage` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_is_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "mitigation" in out

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            main(["--machine", "pentium-3", "fig06"])

    def test_all_commands_registered(self):
        parser = build_parser()
        # argparse stores subparsers choices on the action.
        sub = next(a for a in parser._actions if hasattr(a, "choices") and a.choices)
        for name in ("fig06", "fig07", "table1", "fig08", "variant1", "variant2",
                     "covert", "rsa", "sgx", "tracker", "ttest", "mitigation",
                     "trace", "metrics", "run"):
            assert name in sub.choices


class TestCommands:
    def test_fig06(self, capsys):
        assert main(["fig06"]) == 0
        out = capsys.readouterr().out
        assert "matched_bits" in out
        assert "hit" in out and "miss" in out

    def test_fig07(self, capsys):
        assert main(["fig07"]) == 0
        out = capsys.readouterr().out
        assert "7a" in out and "7b" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "recl" in out and "lock" in out

    def test_fig08(self, capsys):
        assert main(["fig08"]) == 0
        out = capsys.readouterr().out
        assert "26 inputs" in out and "Figure 8b" in out

    def test_variant1_small(self, capsys):
        assert main(["--seed", "3", "variant1", "--rounds", "10"]) == 0
        out = capsys.readouterr().out
        assert "success rate" in out

    def test_covert_small(self, capsys):
        assert main(["covert", "--rounds", "5"]) == 0
        out = capsys.readouterr().out
        assert "bps" in out

    def test_sgx(self, capsys):
        assert main(["sgx"]) == 0
        out = capsys.readouterr().out
        assert "inferred 0" in out and "inferred 1" in out

    def test_tracker(self, capsys):
        assert main(["tracker"]) == 0
        out = capsys.readouterr().out
        assert "key-load" in out

    def test_rsa_small(self, capsys):
        assert main(["rsa", "--bits", "64"]) == 0
        out = capsys.readouterr().out
        assert "exact: True" in out

    def test_ttest(self, capsys):
        assert main(["ttest"]) == 0
        out = capsys.readouterr().out
        assert "t accurate" in out

    def test_haswell_machine_selectable(self, capsys):
        assert main(["--machine", "i7-4770", "fig06"]) == 0
        assert "matched_bits" in capsys.readouterr().out


class TestObservability:
    def test_trace_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        assert main(["trace", "variant1", "--rounds", "3", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "TableTransition" in stdout and "wrote" in stdout
        data = json.loads(out.read_text())
        names = {record["name"] for record in data["traceEvents"]}
        assert {"LoadTraced", "TableTransition", "train"} <= names

    def test_metrics_text(self, capsys):
        assert main(["metrics", "covert", "--rounds", "5"]) == 0
        out = capsys.readouterr().out
        assert "machine.cycles" in out
        assert "ip_stride.prefetches_issued" in out
        assert "span" in out  # profiler table rides along

    def test_metrics_json(self, capsys):
        assert main(["metrics", "covert", "--rounds", "5", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"]["name"] == "covert"
        assert payload["metrics"]["machine.cycles"] > 0
        assert "total" in payload["run"]["spans"]

    def test_trace_rejects_unknown_attack(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "nonexistent"])
        capsys.readouterr()


class TestRun:
    def test_run_single_attack(self, capsys):
        assert main(["run", "sgx", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "sgx" in out and "jobs=1" in out

    def test_run_suite_parallel_json(self, capsys):
        assert main(["run", "--suite", "--rounds", "2", "--jobs", "2",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == 2
        assert len(payload["merged"]) == 8
        for batch in payload["merged"].values():
            assert batch["n_trials"] >= 2

    def test_run_without_attack_or_suite_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])
        capsys.readouterr()

    def test_run_repeats_merge(self, capsys):
        assert main(["run", "tracker", "--rounds", "1", "--repeats", "2",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["merged"]["tracker"]["n_trials"] == 2


class TestReport:
    def test_report_quick(self, capsys):
        assert main(["report", "--quick", "--rounds", "20"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
        assert "out of band" not in out
        assert out.count("reproduced") >= 8

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--quick", "--rounds", "20", "-o", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "| experiment |" in target.read_text()


class TestCampaign:
    def run_args(self, tmp_path, *extra):
        return [
            "campaign", *extra,
            "--store", str(tmp_path / "store"),
            "--attacks", "variant1",
            "--repeats", "1",
            "--rounds", "3",
        ]

    def test_campaign_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("revng-table1", "attacks-vs-noise", "defense-matrix"):
            assert name in out

    def test_campaign_without_name_errors(self, capsys):
        assert main(["campaign", "run"]) == 2
        assert "specify a builtin campaign" in capsys.readouterr().err

    def test_campaign_run_twice_second_all_cached(self, tmp_path, capsys):
        assert main(self.run_args(tmp_path, "run", "attacks-vs-noise")) == 0
        first = capsys.readouterr().out
        assert "0 cached, 3 executed" in first
        assert main(
            self.run_args(tmp_path, "run", "attacks-vs-noise") + ["--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cached"] == payload["n_cells"] == 3
        assert payload["executed"] == 0
        assert payload["complete"] is True

    def test_campaign_status(self, tmp_path, capsys):
        assert main(self.run_args(tmp_path, "status", "defense-matrix")) == 0
        out = capsys.readouterr().out
        assert "0/4 cells cached" in out
        assert main(self.run_args(tmp_path, "run", "defense-matrix")) == 0
        capsys.readouterr()
        assert main(self.run_args(tmp_path, "status", "defense-matrix")) == 0
        assert "a run would execute nothing" in capsys.readouterr().out

    def test_campaign_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "campaign.md"
        assert main(self.run_args(tmp_path, "run", "revng-table1")) == 0
        capsys.readouterr()
        assert main(
            self.run_args(tmp_path, "report", "revng-table1") + ["-o", str(target)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        text = target.read_text()
        assert text.startswith("## Campaign `revng-table1`")
        assert "| experiment |" in text

    def test_campaign_report_on_unfilled_store_exits_1(self, tmp_path, capsys):
        assert main(self.run_args(tmp_path, "report", "revng-table1")) == 1
        err = capsys.readouterr().err
        assert "0/2 cells filled" in err

    def test_campaign_aggregate_on_partial_store_exits_1(self, tmp_path, capsys):
        assert main(
            self.run_args(tmp_path, "run", "attacks-vs-noise", "--shard", "0/2")
        ) == 0
        capsys.readouterr()
        assert main(self.run_args(tmp_path, "aggregate", "attacks-vs-noise")) == 1
        assert "cells filled" in capsys.readouterr().err

    def test_campaign_takes_one_name_outside_merge(self, tmp_path, capsys):
        assert main(self.run_args(tmp_path, "run", "revng-table1", "extra")) == 2
        assert "campaign merge" in capsys.readouterr().err


class TestFleetCli:
    def run_args(self, store, *extra):
        return [
            "campaign", *extra,
            "--store", str(store),
            "--attacks", "variant1",
            "--repeats", "2",
            "--rounds", "3",
        ]

    def test_bad_shard_spec_exits_2(self, tmp_path, capsys):
        assert main(
            self.run_args(tmp_path / "s", "run", "attacks-vs-noise", "--shard", "2/2")
        ) == 2
        assert "shard" in capsys.readouterr().err

    def test_shard_rejected_for_report(self, tmp_path, capsys):
        assert main(
            self.run_args(tmp_path / "s", "report", "attacks-vs-noise", "--shard", "0/2")
        ) == 2
        assert "run" in capsys.readouterr().err

    def test_sharded_fill_merge_aggregate_round_trip(self, tmp_path, capsys):
        # The fleet-smoke shape, in miniature: serial vs 2-way sharded
        # fill + merge must agree byte-for-byte at the aggregate level.
        assert main(self.run_args(tmp_path / "serial", "run", "attacks-vs-noise")) == 0
        for i in range(2):
            assert main(
                self.run_args(
                    tmp_path / f"w{i}", "run", "attacks-vs-noise", "--shard", f"{i}/2"
                )
            ) == 0
        capsys.readouterr()
        assert main([
            "campaign", "merge", str(tmp_path / "w0"), str(tmp_path / "w1"),
            "--store", str(tmp_path / "merged"),
        ]) == 0
        assert "merged" in capsys.readouterr().out
        assert main(
            self.run_args(tmp_path / "serial", "aggregate", "attacks-vs-noise")
            + ["-o", str(tmp_path / "serial.json")]
        ) == 0
        assert main(
            self.run_args(tmp_path / "merged", "aggregate", "attacks-vs-noise")
            + ["-o", str(tmp_path / "merged.json")]
        ) == 0
        assert (
            (tmp_path / "serial.json").read_bytes()
            == (tmp_path / "merged.json").read_bytes()
        )

    def test_merge_without_sources_exits_2(self, capsys):
        assert main(["campaign", "merge"]) == 2
        assert "at least one source" in capsys.readouterr().err

    def test_merge_of_non_store_exits_2(self, tmp_path, capsys):
        assert main([
            "campaign", "merge", str(tmp_path / "nope"),
            "--store", str(tmp_path / "dest"),
        ]) == 2
        assert "not a TrialStore" in capsys.readouterr().err

    def test_serve_refuses_missing_store(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nowhere")]) == 2
        assert "not a TrialStore" in capsys.readouterr().err

    def test_campaign_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "mini.json"
        spec_path.write_text(json.dumps({
            "name": "mini",
            "attacks": ["sgx"],
            "repeats": 1,
            "rounds": 2,
        }))
        assert main([
            "campaign", "run", str(spec_path), "--store", str(tmp_path / "store"),
        ]) == 0
        assert "sgx/i7-9700/baseline" in capsys.readouterr().out
