"""Tests for Variant 2 (user→kernel) and the IP search."""

import pytest

from repro.core.variant2 import Variant2UserKernel
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.bits import low_bits
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def quiet_attack():
    machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=31)
    rng = make_rng(31)
    return Variant2UserKernel(machine, secret_source=lambda: int(rng.integers(0, 2)))


class TestIPSearchQuiet:
    def test_search_finds_true_index(self, quiet_attack):
        result = quiet_attack.find_target_index()
        assert result.found
        assert result.index == quiet_attack.true_target_index

    def test_search_space_is_256(self, quiet_attack):
        """KASLR slides are page-granular, so the low 8 bits are fixed and
        the search space is exactly 256 indexes (§5.2)."""
        assert 0 <= quiet_attack.true_target_index < 256

    def test_search_records_history(self, quiet_attack):
        result = quiet_attack.searcher._result(quiet_attack.true_target_index)
        assert result.groups_tested >= 1

    def test_ip_for_index_aliases(self, quiet_attack):
        for index in (0, 0x7F, 0xFF):
            ip = quiet_attack.searcher.ip_for_index(index)
            assert low_bits(ip, 8) == index


class TestAttackQuiet:
    def test_taken_branch_detected(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=32)
        attack = Variant2UserKernel(machine, secret_source=lambda: 1)
        attack.find_target_index()
        result = attack.run_round()
        assert result.true_taken
        assert result.inferred_taken
        assert result.success

    def test_untaken_branch_detected(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=33)
        # Search needs taken branches; attack phase then sees untaken ones.
        secrets = iter([1] * 5000 + [0] * 50)
        attack = Variant2UserKernel(machine, secret_source=lambda: next(secrets))
        attack.find_target_index()
        while True:  # drain remaining taken secrets deterministically
            result = attack.run_round()
            if not result.true_taken:
                break
        assert not result.inferred_taken
        assert result.success

    def test_round_before_search_rejected(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=34)
        attack = Variant2UserKernel(machine, secret_source=lambda: 1)
        with pytest.raises(RuntimeError):
            attack.run_round()

    def test_hot_lines_show_stride_11(self):
        """Figure 14a: the detected stride is the trained 11."""
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=35)
        attack = Variant2UserKernel(machine, secret_source=lambda: 1)
        attack.find_target_index()
        result = attack.run_round(demand_line=20)
        assert 20 in result.hot_lines
        assert 31 in result.hot_lines  # 20 + 11


class TestNoisyRate:
    def test_mostly_succeeds_under_noise(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=36)
        rng = make_rng(36)
        attack = Variant2UserKernel(machine, secret_source=lambda: int(rng.integers(0, 2)))
        result = attack.find_target_index()
        assert result.index == attack.true_target_index
        successes = sum(attack.run_round().success for _ in range(60))
        assert successes >= 48  # paper band: 91 %
