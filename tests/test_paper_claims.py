"""Quantitative side-claims from the paper's prose, checked on the model.

Beyond the figures and tables, the paper makes scattered measurable
claims; each test here cites one.
"""

import numpy as np

from repro.channels.psc import PrefetcherStatusCheck
from repro.channels.flush_reload import FlushReload
from repro.core.gadget import TrainingGadget
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE


def fresh(seed=0):
    machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=seed)
    ctx = machine.new_thread("attacker")
    machine.context_switch(ctx)
    return machine, ctx


class TestTrainingCost:
    def test_training_takes_1000_to_2000_cycles(self):
        """§9.2: 'AfterImage requires only 3 to 4 iterations of a load loop
        (1000-2000 cycles in the presence of page misses)' — versus
        Spectre's ~26000-cycle BPU mistraining."""
        machine, ctx = fresh(240)
        gadget = TrainingGadget(machine, ctx, 0x4018E6, 0x40193A)
        before = machine.cycles
        gadget.train(4)
        cost = machine.cycles - before
        assert 500 <= cost <= 3000

    def test_retraining_on_warm_caches_is_cheaper(self):
        machine, ctx = fresh(241)
        gadget = TrainingGadget(machine, ctx, 0x4018E6, 0x40193A)
        gadget.train(4)
        before = machine.cycles
        gadget.train(4)
        warm_cost = machine.cycles - before
        assert warm_cost < 500  # all cache hits now


class TestPSCSpeedClaim:
    def test_psc_faster_than_flush_reload(self):
        """§6.1: PSC 'only needs to test the latency of a single
        destination address, which makes it faster than Flush+Reload or
        Prime+Probe'."""
        machine, ctx = fresh(242)
        buffer = machine.new_buffer(ctx.space, 8 * PAGE_SIZE)
        psc = PrefetcherStatusCheck(machine, ctx, 0x680044, buffer, 7)
        psc.train()
        before = machine.cycles
        psc.check()
        psc_cost = machine.cycles - before

        shared = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, shared)
        fr = FlushReload(machine, ctx, shared, reload_ip=0x700000)
        before = machine.cycles
        fr.flush()
        fr.reload()
        fr_cost = machine.cycles - before

        assert psc_cost < fr_cost / 4  # one probe vs a 64-line sweep


class TestStrideGranularityClaims:
    def test_strides_need_not_be_line_aligned(self):
        """§4.2: 'the stride of Intel's IP-stride prefetcher does not need
        to align to a cache line'."""
        machine, ctx = fresh(243)
        buffer = machine.new_buffer(ctx.space, PAGE_SIZE)
        machine.warm_buffer_tlb(ctx, buffer)
        stride_bytes = 100  # not a multiple of 64
        for i in range(3):
            machine.load(ctx, 0x400050, buffer.addr(i * stride_bytes))
        entry = machine.ip_stride.entry_for_ip(0x400050)
        assert entry.stride == stride_bytes

    def test_covert_channel_carries_5_bits_per_round(self):
        """Footnote 5: line-granularity observation caps the symbol at
        5 bits (strides up to 2 KiB = 32 lines)."""
        from repro.core.covert import CovertChannel

        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=244)
        channel = CovertChannel(machine, n_entries=1)
        report = channel.transmit([31])
        assert report.bits_per_round == 5
        assert report.rounds[0].received_value == 31


class TestBranchFrequencyMotivation:
    def test_kernel_patterns_expose_one_load_ip_per_arm(self):
        """§2.1/Figures 1-2: common kernel code has per-arm loads — the
        attack surface is broad, not algorithm-specific."""
        from repro.kernel.patterns import BatteryPropertySyscall, BluetoothTxSyscall
        from repro.kernel.syscalls import Kernel

        machine, _ctx = fresh(245)
        kernel = Kernel(machine)
        bt = BluetoothTxSyscall(kernel)
        battery = BatteryPropertySyscall(kernel)
        all_indexes = [ip & 0xFF for ip in bt.case_ips.values()]
        all_indexes += [ip & 0xFF for ip in battery.case_ips.values()]
        assert len(set(all_indexes)) == len(all_indexes)


class TestTimingConstantStillLeaks:
    def test_equal_load_counts_but_different_ips(self):
        """§2.1: the timing-constant engine issues the *same number* of
        loads per direction — it stays timing-constant — but their IPs
        differ, which is all AfterImage needs."""
        from repro.crypto.rsa import TimingConstantLadderVictim

        machine, _ = fresh(246)
        space = machine.new_address_space("victim")
        ctx = machine.new_thread("victim", space)
        machine.context_switch(ctx)
        operands = machine.new_buffer(space, 2 * PAGE_SIZE)
        code = machine.code_region(0x400000, name="bignum")
        victim = TimingConstantLadderVictim(machine, ctx, code, operands)

        def loads_for(exponent):
            counter = {"n": 0}
            original = machine.load

            def counting(c, ip, vaddr, fenced=False):
                counter["n"] += 1
                return original(c, ip, vaddr, fenced)

            machine.load = counting
            victim.modexp(5, exponent, 10**9 + 7)
            machine.load = original
            return counter["n"]

        # 4-bit exponents with different Hamming weights, same bit length.
        assert loads_for(0b1111) == loads_for(0b1000)


class TestASLRClaims:
    def test_aslr_does_not_shift_prefetcher_index(self):
        """Footnote 4: page-granular (K)ASLR preserves the low 12 bits, so
        the 8-bit prefetcher index is ASLR-invariant."""
        indexes = set()
        for seed in range(8):
            machine = Machine(COFFEE_LAKE_I7_9700, seed=seed)
            region = machine.code_region(0x400ABC)
            indexes.add(region.base & 0xFF)
        assert indexes == {0xBC}

    def test_btb_would_need_20_bits(self):
        """§9.2 contrast: the BTB uses ~20 IP bits, which ASLR *does*
        perturb — two boots rarely share a 20-bit suffix."""
        suffixes = set()
        for seed in range(8):
            machine = Machine(COFFEE_LAKE_I7_9700, seed=seed)
            region = machine.code_region(0x400ABC)
            suffixes.add(region.base & ((1 << 20) - 1))
        assert len(suffixes) > 1
