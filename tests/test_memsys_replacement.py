"""Unit and property tests for the replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsys.replacement import (
    BitPLRU,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    TreePLRU,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRUPolicy(4)
        for way in range(4):
            lru.fill(way)
        lru.touch(0)
        assert lru.victim() == 1

    def test_hit_refreshes(self):
        lru = LRUPolicy(2)
        lru.fill(0)
        lru.fill(1)
        lru.touch(0)
        assert lru.victim() == 1

    def test_reset(self):
        lru = LRUPolicy(2)
        lru.fill(1)
        lru.reset()
        assert lru.victim() == 0

    def test_out_of_range_way(self):
        with pytest.raises(IndexError):
            LRUPolicy(2).touch(2)


class TestFIFO:
    def test_hits_do_not_refresh(self):
        fifo = FIFOPolicy(3)
        for way in range(3):
            fifo.fill(way)
        fifo.touch(0)  # a hit, not a fill
        assert fifo.victim() == 0

    def test_fill_order(self):
        fifo = FIFOPolicy(3)
        fifo.fill(2)
        fifo.fill(0)
        fifo.fill(1)
        assert fifo.victim() == 2


class TestBitPLRU:
    def test_victim_is_first_clear_bit(self):
        plru = BitPLRU(4)
        plru.touch(0)
        plru.touch(2)
        assert plru.victim() == 1

    def test_generation_reset(self):
        plru = BitPLRU(3)
        plru.touch(0)
        plru.touch(1)
        # Touching way 2 would set all bits: others are cleared first.
        plru.touch(2)
        assert plru.victim() == 0

    def test_figure_8b_scenario(self):
        """The paper's Figure 8b: fill 24, refresh first 8, evict 8 -> the
        victims are slots 8..15 (inputs 9-16), a contiguous run."""
        plru = BitPLRU(24)
        for way in range(24):
            plru.fill(way)
        for way in range(8):
            plru.touch(way)
        victims = []
        for _ in range(8):
            way = plru.victim()
            victims.append(way)
            plru.fill(way)
        assert victims == list(range(8, 16))

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200))
    def test_victim_never_most_recent(self, touches):
        plru = BitPLRU(8)
        for way in touches:
            plru.touch(way)
        assert plru.victim() != touches[-1]


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRU(6)

    def test_victim_avoids_recent(self):
        plru = TreePLRU(4)
        plru.touch(0)
        assert plru.victim() != 0

    def test_alternating_touches(self):
        plru = TreePLRU(2)
        plru.touch(0)
        assert plru.victim() == 1
        plru.touch(1)
        assert plru.victim() == 0

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100))
    def test_victim_in_range(self, touches):
        plru = TreePLRU(8)
        for way in touches:
            plru.touch(way)
        assert 0 <= plru.victim() < 8


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("lru", LRUPolicy),
            ("fifo", FIFOPolicy),
            ("bit-plru", BitPLRU),
            ("tree-plru", TreePLRU),
            ("random", RandomPolicy),
        ],
    )
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("belady", 4)

    def test_invalid_way_count(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0)
