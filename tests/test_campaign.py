"""Tests for repro.campaign specs: cell expansion, content keys, seeds.

The cache-key contract under test: a cell key covers *everything that
determines the result* (experiment, rounds, options, defense, machine
fingerprint, derived seed) and *nothing presentational* (campaign name,
axis display name) — so renaming never invalidates a cache, and no
model-parameter change can ever be served a stale batch.
"""

import dataclasses
import json

import pytest

from repro.campaign import (
    BUILTIN_CAMPAIGNS,
    AxisPoint,
    CampaignSpec,
    builtin_campaign,
    cell_seed,
    experiment_names,
    load_spec,
    params_fingerprint,
    run_cell,
)
from repro.params import preset

PARAMS = preset("i7-9700")


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="t",
        attacks=("variant1", "covert"),
        machines=("i7-9700",),
        axes=(AxisPoint(name="baseline"), AxisPoint(name="noisy", noise=(("timing_sigma", 5.0),))),
        repeats=2,
        rounds=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpecExpansion:
    def test_n_cells_is_full_cross_product(self):
        spec = small_spec()
        cells = spec.cells()
        assert spec.n_cells == 2 * 1 * 2 * 2 == len(cells)

    def test_cells_are_deterministic(self):
        a = [(c.key, c.seed, c.label) for c in small_spec().cells()]
        b = [(c.key, c.seed, c.label) for c in small_spec().cells()]
        assert a == b

    def test_keys_are_unique(self):
        keys = [c.key for c in small_spec().cells()]
        assert len(set(keys)) == len(keys)

    def test_seeds_are_unique_across_coordinates(self):
        seeds = [c.seed for c in small_spec().cells()]
        assert len(set(seeds)) == len(seeds)

    def test_axis_noise_applied_to_params(self):
        cells = small_spec().cells()
        noisy = [c for c in cells if c.axis.name == "noisy"]
        base = [c for c in cells if c.axis.name == "baseline"]
        assert all(c.params.noise.timing_sigma == 5.0 for c in noisy)
        assert all(c.params.noise.timing_sigma == PARAMS.noise.timing_sigma for c in base)


class TestCellKey:
    def test_key_ignores_campaign_name(self):
        a = {c.key for c in small_spec(name="alpha").cells()}
        b = {c.key for c in small_spec(name="beta").cells()}
        assert a == b

    def test_key_ignores_axis_display_name(self):
        renamed = (
            AxisPoint(name="quiet-base"),
            AxisPoint(name="sigma5", noise=(("timing_sigma", 5.0),)),
        )
        a = {c.key for c in small_spec().cells()}
        b = {c.key for c in small_spec(axes=renamed).cells()}
        assert a == b

    def test_key_changes_with_rounds(self):
        a = {c.key for c in small_spec(rounds=3).cells()}
        b = {c.key for c in small_spec(rounds=4).cells()}
        assert a.isdisjoint(b)

    def test_key_changes_with_base_seed(self):
        a = {c.key for c in small_spec(base_seed=1).cells()}
        b = {c.key for c in small_spec(base_seed=2).cells()}
        assert a.isdisjoint(b)

    def test_key_changes_with_options(self):
        a = {c.key for c in small_spec().cells()}
        b = {c.key for c in small_spec(options={"covert": {"entries": 4}}).cells()}
        assert a != b

    def test_key_changes_with_defense(self):
        base = (AxisPoint(name="x"),)
        defended = (AxisPoint(name="x", defense="tagged"),)
        a = {c.key for c in small_spec(axes=base).cells()}
        b = {c.key for c in small_spec(axes=defended).cells()}
        assert a.isdisjoint(b)

    def test_fingerprint_tracks_any_machine_field(self):
        assert params_fingerprint(PARAMS) != params_fingerprint(
            dataclasses.replace(PARAMS, dram_latency=PARAMS.dram_latency + 1)
        )
        assert params_fingerprint(PARAMS) != params_fingerprint(
            PARAMS.with_noise(timing_sigma=9.9)
        )
        assert params_fingerprint(PARAMS) == params_fingerprint(preset("i7-9700"))

    def test_seed_mixes_axis_content_not_label(self):
        a = AxisPoint(name="label-a", defense="tagged")
        b = AxisPoint(name="label-b", defense="tagged")
        c = AxisPoint(name="label-a", defense="disabled")
        assert cell_seed(1, "variant1", "i7-9700", a, 0) == cell_seed(
            1, "variant1", "i7-9700", b, 0
        )
        assert cell_seed(1, "variant1", "i7-9700", a, 0) != cell_seed(
            1, "variant1", "i7-9700", c, 0
        )


class TestValidation:
    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError, match="unknown defense"):
            AxisPoint(name="x", defense="prayer")

    def test_unknown_noise_field_rejected(self):
        with pytest.raises(ValueError, match="unknown noise field"):
            AxisPoint(name="x", noise=(("jitterbug", 1),))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            small_spec(axes=(AxisPoint(name="a"), AxisPoint(name="a", defense="tagged")))

    def test_empty_attacks_rejected(self):
        with pytest.raises(ValueError, match="no attacks"):
            small_spec(attacks=())

    def test_nonpositive_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            small_spec(repeats=0)

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError, match="unknown machine preset"):
            small_spec(machines=("pentium-3",))


class TestSerialization:
    def test_spec_round_trips_through_dict(self):
        spec = small_spec(options={"covert": {"entries": 2}}, description="d")
        assert CampaignSpec.from_dict(spec.as_dict()) == spec

    def test_load_json_spec(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "c.json"
        path.write_text(json.dumps(spec.as_dict()))
        assert load_spec(path) == spec

    def test_load_toml_spec(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "c.toml"
        path.write_text(
            'name = "toml-sweep"\n'
            'attacks = ["variant1"]\n'
            "repeats = 2\n"
            "rounds = 4\n"
            "[[axes]]\n"
            'name = "baseline"\n'
            "[[axes]]\n"
            'name = "flushed"\n'
            'defense = "flush-on-switch"\n'
        )
        spec = load_spec(path)
        assert spec.name == "toml-sweep"
        assert spec.axes[1].defense == "flush-on-switch"
        assert spec.n_cells == 4

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "c.yaml"
        path.write_text("name: nope")
        with pytest.raises(ValueError, match="unknown campaign spec format"):
            load_spec(path)


class TestBuiltins:
    def test_three_builtins_registered(self):
        assert set(BUILTIN_CAMPAIGNS) == {
            "revng-table1",
            "attacks-vs-noise",
            "defense-matrix",
        }

    def test_builtin_experiments_all_known(self):
        known = set(experiment_names())
        for spec in BUILTIN_CAMPAIGNS.values():
            assert set(spec.attacks) <= known

    def test_unknown_builtin_raises(self):
        with pytest.raises(KeyError, match="unknown builtin campaign"):
            builtin_campaign("moonshot")


class TestTable1Experiment:
    def test_run_cell_scores_against_paper_table(self):
        spec = CampaignSpec(name="t1", attacks=("table1",), repeats=1)
        (cell,) = spec.cells()
        batch = run_cell(cell)
        assert batch.attack == "table1"
        assert batch.n_trials > 0
        assert batch.quality == batch.success_rate
        assert batch.notes["campaign_cell"]["key"] == cell.key
        assert len(batch.notes["rows"]) == batch.n_trials

    def test_table1_rejects_defenses(self):
        spec = CampaignSpec(
            name="t1",
            attacks=("table1",),
            axes=(AxisPoint(name="d", defense="tagged"),),
        )
        (cell,) = spec.cells()
        with pytest.raises(ValueError, match="cannot apply defense"):
            run_cell(cell)
