"""Tests for the machine presets (paper Table 2) and parameter validation."""

import dataclasses

import pytest

from repro.params import (
    CACHE_LINE_SIZE,
    COFFEE_LAKE_I7_9700,
    HASWELL_I7_4770,
    LINES_PER_PAGE,
    PAGE_SIZE,
    CacheGeometry,
    IPStrideParams,
    MachineParams,
    preset,
)


class TestTable2Presets:
    """The architecture/system configurations of the paper's Table 2."""

    def test_haswell_identity(self):
        assert HASWELL_I7_4770.name == "i7-4770"
        assert HASWELL_I7_4770.microarchitecture == "Haswell"
        assert HASWELL_I7_4770.cpu_cores == 4

    def test_coffee_lake_identity(self):
        assert COFFEE_LAKE_I7_9700.name == "i7-9700"
        assert COFFEE_LAKE_I7_9700.microarchitecture == "Coffee Lake"
        assert COFFEE_LAKE_I7_9700.cpu_cores == 8

    def test_llc_capacities_match_table2(self):
        assert HASWELL_I7_4770.llc_capacity_bytes == 8 * 2**20  # 8 MB
        assert COFFEE_LAKE_I7_9700.llc_capacity_bytes == 12 * 2**20  # 12 MB

    def test_aslr_enabled_by_default(self):
        assert HASWELL_I7_4770.aslr_enabled
        assert COFFEE_LAKE_I7_9700.aslr_enabled

    def test_sgx_only_on_coffee_lake(self):
        # The artifact appendix requires the i7-9700 for the SGX PoCs.
        assert COFFEE_LAKE_I7_9700.sgx_supported
        assert not HASWELL_I7_4770.sgx_supported

    def test_preset_lookup(self):
        assert preset("i7-4770") is HASWELL_I7_4770
        assert preset("Coffee-Lake") is COFFEE_LAKE_I7_9700

    def test_preset_unknown(self):
        with pytest.raises(KeyError):
            preset("alder-lake")


class TestIPStrideParams:
    """Prefetcher constants from the paper's §4 reverse engineering."""

    def test_defaults_match_paper(self):
        p = IPStrideParams()
        assert p.n_entries == 24  # Fig. 8a
        assert p.index_bits == 8  # Fig. 6
        assert p.prefetch_threshold == 2  # §4.2
        assert p.confidence_max == 3  # 2-bit counter
        assert p.stride_bits == 13  # 1 + 12 bits
        assert p.max_stride_bytes == 2048  # 2 KiB cap
        assert p.replacement == "bit-plru"  # Fig. 8b


class TestValidation:
    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(name="bad", sets=100, ways=8, latency=4)

    def test_threshold_must_separate_hit_from_miss(self):
        with pytest.raises(ValueError):
            dataclasses.replace(COFFEE_LAKE_I7_9700, llc_hit_threshold=30)

    def test_dram_slower_than_llc(self):
        with pytest.raises(ValueError):
            dataclasses.replace(COFFEE_LAKE_I7_9700, dram_latency=40)

    def test_geometry_capacity(self):
        geometry = CacheGeometry(name="L1D", sets=64, ways=8, latency=4)
        assert geometry.capacity_bytes == 32 * 1024


class TestDerivedMachines:
    def test_quiet_removes_all_noise(self):
        quiet = COFFEE_LAKE_I7_9700.quiet()
        assert quiet.noise.timing_sigma == 0.0
        assert quiet.noise.switch_cache_lines == 0
        assert quiet.noise.switch_fixed_ips == 0
        assert quiet.noise.kernel_variable_ips == 0

    def test_quiet_preserves_geometry(self):
        quiet = COFFEE_LAKE_I7_9700.quiet()
        assert quiet.llc_capacity_bytes == COFFEE_LAKE_I7_9700.llc_capacity_bytes

    def test_with_noise_override(self):
        modified = COFFEE_LAKE_I7_9700.with_noise(timing_sigma=9.0)
        assert modified.noise.timing_sigma == 9.0
        assert COFFEE_LAKE_I7_9700.noise.timing_sigma != 9.0  # original intact

    def test_constants(self):
        assert CACHE_LINE_SIZE == 64
        assert PAGE_SIZE == 4096
        assert LINES_PER_PAGE == 64
