"""Corruption tests for every repro.sanitize invariant class.

Each test takes a healthy machine, corrupts one piece of model state the
way a hypothetical bug would, and asserts the sanitizer raises a
structured :class:`InvariantViolation` naming that invariant.  The
corruption lines mutate foreign private state on purpose — exactly what
lint rule RL005 exists to catch — so each carries its noqa marker.
"""

import pytest

from repro.cpu.machine import Machine
from repro.memsys.hierarchy import MemoryLevel
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE
from repro.prefetch.base import LoadEvent, PrefetchRequest
from repro.sanitize import InvariantViolation, Sanitizer, sanitize_enabled


def make_machine(**kwargs):
    return Machine(COFFEE_LAKE_I7_9700, seed=11, sanitize=True, **kwargs)


def trained_machine(n_ips=6):
    """A sanitized machine whose prefetcher holds confident entries."""
    machine = make_machine()
    ctx = machine.new_thread("victim")
    buf = machine.new_buffer(ctx.space, 64 * PAGE_SIZE)
    machine.warm_buffer_tlb(ctx, buf)
    for k in range(n_ips):
        ip = 0x40_1000 + 0x100 * k
        for step in range(4):
            machine.load(ctx, ip, buf.page_line_addr(k, step))
    return machine, ctx, buf


def expect_violation(machine, invariant):
    with pytest.raises(InvariantViolation) as excinfo:
        machine.sanitizer.check_all()
    assert excinfo.value.invariant == invariant
    return excinfo.value


class TestGating:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert Machine(COFFEE_LAKE_I7_9700, seed=1).sanitizer is None

    def test_explicit_flag_wins(self):
        assert make_machine().sanitizer is not None

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(None)
        assert Machine(COFFEE_LAKE_I7_9700, seed=1).sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled(None)
        assert sanitize_enabled(True)

    def test_healthy_machine_stays_clean(self):
        machine, ctx, buf = trained_machine()
        other = machine.new_thread("other")
        machine.context_switch(ctx)
        machine.context_switch(other)
        machine.sanitizer.check_all()
        assert machine.sanitizer.checks_run > 0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer(Machine(COFFEE_LAKE_I7_9700, seed=1), full_scan_interval=0)


class TestPrefetcherInvariants:
    def test_confidence_out_of_range(self):
        machine, _, _ = trained_machine()
        entry = machine.ip_stride.entries()[0]
        entry.confidence = 7  # repro: noqa[RL005] - deliberate corruption
        violation = expect_violation(machine, "confidence-range")
        assert violation.component == "ip-stride"
        assert violation.snapshot["confidence"] == 7

    def test_stride_out_of_field(self):
        machine, _, _ = trained_machine()
        entry = machine.ip_stride.entries()[0]
        entry.stride = 1 << 14  # repro: noqa[RL005] - deliberate corruption
        expect_violation(machine, "stride-width")

    def test_index_wider_than_index_bits(self):
        machine, _, _ = trained_machine()
        pf = machine.ip_stride
        entry = pf.entries()[0]
        old_index = entry.index
        entry.index = 0x1FF  # repro: noqa[RL005] - deliberate corruption
        slot = pf._index_to_slot.pop(old_index)  # repro: noqa[RL005]
        pf._index_to_slot[0x1FF] = slot  # repro: noqa[RL005]
        expect_violation(machine, "index-width")

    def test_occupancy_overflow(self):
        machine, _, _ = trained_machine()
        pf = machine.ip_stride
        pf._slots.append(None)  # repro: noqa[RL005] - deliberate corruption
        expect_violation(machine, "table-capacity")

    def test_index_map_points_at_empty_slot(self):
        machine, _, _ = trained_machine()
        pf = machine.ip_stride
        index = next(iter(pf._index_to_slot))
        pf._slots[pf._index_to_slot[index]] = None  # repro: noqa[RL005]
        expect_violation(machine, "index-map")

    def test_bit_plru_saturated(self):
        machine, _, _ = trained_machine()
        policy = machine.ip_stride._policy
        policy._mru = [True] * len(policy._mru)  # repro: noqa[RL005]
        expect_violation(machine, "bit-plru")

    def test_violation_carries_cycle(self):
        machine, _, _ = trained_machine()
        machine.ip_stride.entries()[0].confidence = -1  # repro: noqa[RL005]
        violation = expect_violation(machine, "confidence-range")
        assert violation.cycle == machine.cycles


class TestPageBoundaryInvariant:
    def test_cross_frame_request_rejected(self):
        machine, ctx, buf = trained_machine()
        paddr = ctx.space.translate(buf.page_line_addr(0, 0))
        event = LoadEvent(
            ip=0x40_1000, vaddr=0, paddr=paddr, hit_level=MemoryLevel.DRAM, asid=ctx.space.asid
        )
        crossing = PrefetchRequest(paddr=paddr + PAGE_SIZE, source="ip-stride")
        with pytest.raises(InvariantViolation) as excinfo:
            machine.sanitizer.prefetcher.check_request(event, crossing)
        assert excinfo.value.invariant == "page-boundary"

    def test_same_frame_request_accepted(self):
        machine, ctx, buf = trained_machine()
        paddr = ctx.space.translate(buf.page_line_addr(0, 0))
        event = LoadEvent(
            ip=0x40_1000, vaddr=0, paddr=paddr, hit_level=MemoryLevel.DRAM, asid=ctx.space.asid
        )
        same_frame = PrefetchRequest(paddr=(paddr // PAGE_SIZE) * PAGE_SIZE, source="ip-stride")
        machine.sanitizer.prefetcher.check_request(event, same_frame)

    def test_model_never_issues_crossing_requests(self):
        # End to end: a victim trained right up to a page boundary must not
        # trip the sanitizer — the model drops the crossing request (§4.3).
        machine, ctx, buf = trained_machine()
        ip = 0x40_2000
        for step in range(60, 64):  # walk to the last lines of page 2
            machine.load(ctx, ip, buf.page_line_addr(2, step))
        machine.sanitizer.check_all()


class TestHierarchyInvariants:
    def test_core_line_missing_from_llc(self):
        machine, ctx, buf = trained_machine()
        paddr = ctx.space.translate(buf.page_line_addr(1, 0))
        machine.load(ctx, 0x40_9000, buf.page_line_addr(1, 0))
        machine.hierarchy.llc_slice(paddr).invalidate(paddr)  # repro: noqa[RL005]
        assert machine.hierarchy.l1.contains(paddr)
        expect_violation(machine, "inclusivity")

    def test_check_line_catches_fresh_violation(self):
        machine, ctx, buf = trained_machine()
        vaddr = buf.page_line_addr(1, 0)
        paddr = ctx.space.translate(vaddr)
        machine.load(ctx, 0x40_9000, vaddr)
        machine.hierarchy.llc_slice(paddr).invalidate(paddr)  # repro: noqa[RL005]
        with pytest.raises(InvariantViolation):
            machine.load(ctx, 0x40_9000, vaddr)

    def test_set_bookkeeping_corruption(self):
        machine, ctx, buf = trained_machine()
        paddr = ctx.space.translate(buf.page_line_addr(1, 0))
        machine.load(ctx, 0x40_9000, buf.page_line_addr(1, 0))
        l1 = machine.hierarchy.l1
        cache_set = l1._sets[l1.set_index(paddr)]  # repro: noqa[RL005]
        way = cache_set._tag_to_way[l1._tag(paddr)]  # repro: noqa[RL005]
        cache_set.tags[way] = None  # repro: noqa[RL005] - deliberate corruption
        expect_violation(machine, "set-bookkeeping")


class TestTLBInvariants:
    def test_capacity_overflow(self):
        machine, ctx, _ = trained_machine()
        tlb = machine.tlb
        for extra in range(machine.params.tlb_entries + 4):
            key = (ctx.space.asid, 0x7000_0000 + extra)
            tlb._entries[key] = extra  # repro: noqa[RL005] - deliberate corruption
            tlb._order.append(key)  # repro: noqa[RL005]
        expect_violation(machine, "capacity")

    def test_lru_order_disagrees(self):
        machine, _, _ = trained_machine()
        machine.tlb._order[0] = (999, 999)  # repro: noqa[RL005] - deliberate corruption
        expect_violation(machine, "lru-bookkeeping")

    def test_orphaned_global_key(self):
        machine, _, _ = trained_machine()
        machine.tlb._global_keys.add((999, 999))  # repro: noqa[RL005]
        expect_violation(machine, "lru-bookkeeping")

    def test_cached_frame_disagrees_with_page_table(self):
        machine, ctx, buf = trained_machine()
        key = (ctx.space.asid, buf.page_line_addr(0, 0) // PAGE_SIZE)
        assert key in machine.tlb._entries
        machine.tlb._entries[key] += 1  # repro: noqa[RL005] - deliberate corruption
        violation = expect_violation(machine, "page-table-agreement")
        assert violation.snapshot["asid"] == ctx.space.asid

    def test_stale_tlb_caught_during_load(self):
        machine, ctx, buf = trained_machine()
        key = (ctx.space.asid, buf.page_line_addr(0, 0) // PAGE_SIZE)
        machine.tlb._entries[key] += 1  # repro: noqa[RL005] - deliberate corruption
        with pytest.raises(InvariantViolation):
            # The full TLB/page-table cross-check runs on the switch path.
            machine.context_switch(machine.new_thread("other"))


class TestViolationStructure:
    def test_message_contains_component_and_state(self):
        machine, _, _ = trained_machine()
        machine.ip_stride.entries()[0].confidence = 9  # repro: noqa[RL005]
        violation = expect_violation(machine, "confidence-range")
        text = str(violation)
        assert "[ip-stride]" in text
        assert "confidence-range" in text
        assert "confidence = 9" in text

    def test_is_assertion_error(self):
        # `pytest.raises(AssertionError)` and bare `assert`-style tooling
        # both catch sanitizer failures.
        assert issubclass(InvariantViolation, AssertionError)
