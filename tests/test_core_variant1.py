"""Tests for AfterImage Variant 1 (cross-thread and cross-process)."""

import pytest

from repro.core.variant1 import (
    BranchLoadVictim,
    RoundResult,
    Variant1CrossProcess,
    Variant1CrossThread,
)
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE


class TestBranchLoadVictim:
    def test_if_path_loads_at_if_ip(self, quiet_machine):
        ctx = quiet_machine.new_thread("victim")
        quiet_machine.context_switch(ctx)
        data = quiet_machine.new_buffer(ctx.space, PAGE_SIZE)
        victim = BranchLoadVictim(quiet_machine, ctx, data)
        victim.run(1, 10)
        assert quiet_machine.ip_stride.entry_for_ip(victim.if_ip) is not None
        assert quiet_machine.ip_stride.entry_for_ip(victim.else_ip) is None

    def test_invalid_bit_rejected(self, quiet_machine):
        ctx = quiet_machine.new_thread("victim")
        quiet_machine.context_switch(ctx)
        data = quiet_machine.new_buffer(ctx.space, PAGE_SIZE)
        victim = BranchLoadVictim(quiet_machine, ctx, data)
        with pytest.raises(ValueError):
            victim.run(2, 10)


class TestCrossProcessQuiet:
    """On a noise-free machine the leak must be exact, every round."""

    @pytest.fixture(scope="class")
    def attack(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=21)
        return Variant1CrossProcess(machine)

    def test_if_path_leaks_as_one(self, attack):
        assert attack.run_round(1).inferred_bit == 1

    def test_else_path_leaks_as_zero(self, attack):
        assert attack.run_round(0).inferred_bit == 0

    def test_round_by_round_sequence(self, attack):
        """Figure 13c: consecutive rounds leak the victim's bit stream."""
        secret = [1, 0, 1, 1, 0, 0, 1, 0]
        leaked = [attack.run_round(bit).inferred_bit for bit in secret]
        assert leaked == secret

    def test_hot_lines_contain_demand_and_prefetch(self, attack):
        result = attack.run_round(1, line=20)
        assert 20 in result.hot_lines
        assert 27 in result.hot_lines  # 20 + S1(7)

    def test_line_bound_checked(self, attack):
        with pytest.raises(ValueError):
            attack.run_round(1, line=60)


class TestCrossThreadQuiet:
    @pytest.fixture(scope="class")
    def attack(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=22)
        return Variant1CrossThread(machine)

    def test_both_directions_leak(self, attack):
        assert attack.run_round(1).inferred_bit == 1
        assert attack.run_round(0).inferred_bit == 0

    def test_probe_samples_show_cascade(self, attack):
        """Figure 13a: the touched sets stand far above the rest."""
        result = attack.run_round(1, line=20)
        hot = {s.set_ordinal for s in result.probe_samples if s.delta > 1000}
        cold_deltas = [s.delta for s in result.probe_samples if s.set_ordinal not in hot]
        assert {20, 27} <= hot
        assert max(abs(d) for d in cold_deltas) < 200

    def test_attacker_and_victim_share_address_space(self, attack):
        assert attack.attacker_ctx.space is attack.victim_ctx.space


class TestNoisyRates:
    """Success-rate bands of the paper's §7.2 (small sample; the full
    200-round evaluation lives in benchmarks/test_table3_success_rates)."""

    def test_cross_process_mostly_succeeds(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=23)
        attack = Variant1CrossProcess(machine)
        successes = sum(attack.run_round(i % 2).success for i in range(40))
        assert successes >= 34

    def test_cross_thread_mostly_succeeds(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=24)
        attack = Variant1CrossThread(machine)
        successes = sum(attack.run_round(i % 2).success for i in range(30))
        assert successes >= 25


class TestRoundResult:
    def test_success_semantics(self):
        assert RoundResult(true_bit=1, inferred_bit=1, victim_line=0).success
        assert not RoundResult(true_bit=1, inferred_bit=0, victim_line=0).success
        assert not RoundResult(true_bit=1, inferred_bit=None, victim_line=0).success
