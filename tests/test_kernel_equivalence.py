"""Differential equivalence gate for the simulation-kernel refactor.

The event-driven kernel (:mod:`repro.cpu.kernel`) re-expresses the load
path, context switching and timer interrupts as queued events dispatched
to pluggable components.  The refactor is only shippable because these
tests pin its behaviour to *committed bytes* produced by the pre-kernel
``Machine``:

* two same-seed JSONL traces (variant1 + covert) must replay
  byte-identically;
* all eight registered attacks must reproduce their committed
  :meth:`TrialBatch.wall_clock_free_dict` aggregates exactly;
* the campaign smoke's content-addressed cell keys must not drift (a
  drift would turn every warm campaign store into a cold one).

Regenerate the fixtures (only when a behaviour change is *intended* and
reviewed) with::

    REPRO_GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_kernel_equivalence.py
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.attacks import run_trials
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import Tracer

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

SEED = 7

#: Small-but-representative round counts: every attack exercises its full
#: train/switch/probe pipeline at least once, and the whole differential
#: suite stays test-suite fast.
ROUNDS = {
    "variant1": 2,
    "variant1-thread": 2,
    "variant2": 2,
    "covert": 2,
    "sgx": 1,
    "switch-leak": 1,
    "rsa": 4,
    "tracker": 1,
}

#: Attacks whose full event streams are pinned byte-for-byte.
TRACED = ("variant1", "covert")

_REGEN = os.environ.get("REPRO_GOLDEN_REGEN") == "1"


def _trace_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}_seed{SEED}_rounds{ROUNDS[name]}.trace.jsonl"


def _run_traced(name: str, out_path: Path) -> None:
    sink = JsonlSink(str(out_path))
    try:
        run_trials(name, seed=SEED, rounds=ROUNDS[name], trace=Tracer([sink]))
    finally:
        sink.close()


def _aggregates() -> dict[str, dict]:
    return {
        name: run_trials(name, seed=SEED, rounds=rounds).wall_clock_free_dict()
        for name, rounds in sorted(ROUNDS.items())
    }


def _campaign_cells() -> dict[str, str]:
    from repro.campaign import builtin_campaign

    spec = dataclasses.replace(
        builtin_campaign("attacks-vs-noise"),
        attacks=("variant1", "sgx"),
        rounds=3,
        repeats=1,
    )
    return {cell.label: cell.key for cell in spec.cells()}


@pytest.mark.parametrize("name", TRACED)
def test_trace_replays_byte_identically(name: str, tmp_path: Path) -> None:
    golden = _trace_path(name)
    if _REGEN:
        _run_traced(name, golden)
        pytest.skip(f"regenerated {golden.name}")
    fresh = tmp_path / golden.name
    _run_traced(name, fresh)
    assert fresh.read_bytes() == golden.read_bytes(), (
        f"{name}: same-seed trace diverged from the committed golden "
        f"({golden.name}); the kernel refactor changed observable behaviour"
    )


def test_all_attacks_reproduce_golden_aggregates() -> None:
    golden = GOLDEN_DIR / f"aggregates_seed{SEED}.json"
    fresh = _aggregates()
    if _REGEN:
        with open(golden, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, sort_keys=True, indent=1)
            handle.write("\n")
        pytest.skip(f"regenerated {golden.name}")
    committed = json.loads(golden.read_text())
    assert set(fresh) == set(committed)
    for name in sorted(fresh):
        assert fresh[name] == committed[name], (
            f"{name}: TrialBatch aggregate diverged from the committed golden"
        )


def test_campaign_cell_keys_do_not_drift() -> None:
    golden = GOLDEN_DIR / "campaign_cells.json"
    fresh = _campaign_cells()
    if _REGEN:
        with open(golden, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, sort_keys=True, indent=1)
            handle.write("\n")
        pytest.skip(f"regenerated {golden.name}")
    committed = json.loads(golden.read_text())
    assert fresh == committed, (
        "campaign cell content hashes drifted: a warm campaign store would "
        "re-execute every cell after this change"
    )
