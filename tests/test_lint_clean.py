"""Guard: the repository's own tree must lint clean.

This is the pytest-side equivalent of running ``python -m repro.lint`` in
CI — any convention regression (an unseeded RNG, a re-typed paper
constant, a slotless hot dataclass...) fails tier-1 immediately, with the
offending findings in the assertion message.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Every tree the repo ships; examples/ rides along because its snippets
#: get copy-pasted into experiments.
LINTED_TREES = ("src", "tests", "benchmarks", "examples")


def test_repository_lints_clean():
    paths = [REPO_ROOT / tree for tree in LINTED_TREES if (REPO_ROOT / tree).is_dir()]
    # flow=True: the tree must also pass the CFG/dataflow rules
    # (RL014-RL017 and the alias-aware RL001/RL003/RL008 upgrades).
    findings, n_files = lint_paths(paths, flow=True)
    assert n_files > 100, f"lint walked only {n_files} files — wrong repo root?"
    rendered = "\n".join(finding.render() for finding in findings)
    assert not findings, f"repro.lint found violations:\n{rendered}"
