"""Cross-module integration tests: full attack stories on one machine."""

import pytest

from repro.core.covert import CovertChannel
from repro.core.tc_rsa_attack import TimingConstantRSAAttack
from repro.core.variant1 import Variant1CrossProcess
from repro.cpu.machine import Machine
from repro.crypto.primes import generate_keypair
from repro.kernel.patterns import BluetoothTxSyscall
from repro.kernel.syscalls import Kernel
from repro.params import COFFEE_LAKE_I7_9700, HASWELL_I7_4770, PAGE_SIZE
from repro.utils.bits import low_bits
from repro.utils.rng import make_rng


class TestMitigationStopsAttacks:
    """§8.3: with clear-ip-prefetcher on every switch, the channel closes."""

    def test_variant1_defeated(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=61)
        machine.flush_prefetcher_on_switch = True
        attack = Variant1CrossProcess(machine)
        results = [attack.run_round(i % 2) for i in range(10)]
        # No stride footprint ever appears: every round is undecided.
        assert all(r.inferred_bit is None for r in results)

    def test_covert_channel_defeated(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=62)
        machine.flush_prefetcher_on_switch = True
        channel = CovertChannel(machine, n_entries=1)
        report = channel.transmit([7, 11, 30])
        assert all(r.received_value is None for r in report.rounds)

    def test_tc_rsa_defeated(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=63)
        machine.flush_prefetcher_on_switch = True
        key = generate_keypair(64, make_rng(63))
        attack = TimingConstantRSAAttack(machine, key, sync_slip_prob=0.0)
        votes = attack.observe_pass(123, n_bits=12)
        # The entry is cleared before every victim slice, so every check
        # reads "victim executed" regardless of the key bit: no information.
        assert all(v == 1 for v, _lat in votes)


class TestASLRResilience:
    """§5.2 footnote 4: ASLR/KASLR do not perturb AfterImage."""

    def test_attack_works_with_and_without_aslr(self):
        import dataclasses

        for aslr in (True, False):
            params = dataclasses.replace(COFFEE_LAKE_I7_9700.quiet(), aslr_enabled=aslr)
            attack = Variant1CrossProcess(Machine(params, seed=64))
            assert attack.run_round(1).success
            assert attack.run_round(0).success

    def test_victim_ip_low_bits_stable_across_boots(self):
        indexes = set()
        for seed in range(6):
            machine = Machine(COFFEE_LAKE_I7_9700, seed=seed)
            kernel = Kernel(machine)
            bt = BluetoothTxSyscall(kernel)
            indexes.add(low_bits(bt.case_ips["HCI_COMMAND_PKT"], 8))
        assert len(indexes) == 1  # KASLR never changes the index


class TestBothMachines:
    @pytest.mark.parametrize("params", [HASWELL_I7_4770, COFFEE_LAKE_I7_9700])
    def test_variant1_on_both_table2_machines(self, params):
        attack = Variant1CrossProcess(Machine(params.quiet(), seed=65))
        assert attack.run_round(1).success
        assert attack.run_round(0).success


class TestKernelPatternLeak:
    def test_bluetooth_packet_type_leaks(self):
        """Figure 1's pattern end-to-end: which HCI packet type the user
        sent is visible to a prefetcher-training attacker."""
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=66)
        kernel = Kernel(machine)
        bt = BluetoothTxSyscall(kernel)
        user = machine.new_thread("user")
        machine.context_switch(user)
        spy = machine.new_thread("spy")
        machine.context_switch(spy)

        # The spy trains one entry per case arm, each with its own stride.
        strides = {"HCI_COMMAND_PKT": 7, "HCI_ACLDATA_PKT": 11, "HCI_SCODATA_PKT": 13}
        trains = {}
        for pkt, stride in strides.items():
            buf = machine.new_buffer(spy.space, PAGE_SIZE)
            machine.warm_buffer_tlb(spy, buf)
            ip = 0x770000 + (bt.case_ips[pkt] - 0x770000) % 256
            for i in range(3):
                machine.load(spy, ip, buf.line_addr(i * stride))
            trains[pkt] = (ip, buf, stride)

        machine.context_switch(user)
        bt.send_frame(user, "HCI_ACLDATA_PKT")
        machine.context_switch(spy)

        # PSC over the three entries: only the executed arm's is disturbed.
        disturbed = []
        for pkt, (ip, buf, stride) in trains.items():
            entry = machine.ip_stride.entry_for_ip(ip)
            if entry is None or entry.confidence < 2:
                disturbed.append(pkt)
        assert disturbed == ["HCI_ACLDATA_PKT"]


class TestCycleAccounting:
    def test_attack_round_consumes_simulated_time(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=67)
        attack = Variant1CrossProcess(machine)
        before = machine.seconds()
        attack.run_round(1)
        elapsed = machine.seconds() - before
        assert 0 < elapsed < 0.01  # a round takes microseconds, not seconds
