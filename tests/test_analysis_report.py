"""Tests for the automated reproduction report."""

from repro.analysis.report import ReportRow, format_rows, generate_report
from repro.params import COFFEE_LAKE_I7_9700


class TestFormatting:
    def test_markdown_table_shape(self):
        rows = [
            ReportRow("exp-a", "1", "1", True),
            ReportRow("exp-b", "2", "3", False),
        ]
        text = format_rows(rows)
        assert text.startswith("# AfterImage reproduction report")
        assert "| exp-a | 1 | 1 | reproduced |" in text
        assert "| exp-b | 2 | 3 | **out of band** |" in text

    def test_title_none_omits_heading(self):
        rows = [ReportRow("exp-a", "1", "1", True)]
        text = format_rows(rows, title=None)
        assert text.startswith("| experiment |")

    def test_extra_sections_appended(self):
        base = generate_report(COFFEE_LAKE_I7_9700, seed=230, rounds=10, quick=True)
        extended = generate_report(
            COFFEE_LAKE_I7_9700,
            seed=230,
            rounds=10,
            quick=True,
            extra_sections=["## Campaign `smoke`", "grid body"],
        )
        assert extended.startswith(base)
        assert extended.endswith("## Campaign `smoke`\ngrid body")


class TestGeneration:
    def test_quick_report_all_in_band(self):
        text = generate_report(COFFEE_LAKE_I7_9700, seed=230, rounds=20, quick=True)
        assert "out of band" not in text
        # All eight headline experiments present.
        for needle in (
            "Fig. 6",
            "Fig. 8a",
            "Table 3",
            "§7.2",
            "§7.3",
            "Fig. 16",
            "§8.3",
        ):
            assert needle in text

    def test_report_is_deterministic(self):
        a = generate_report(COFFEE_LAKE_I7_9700, seed=231, rounds=10, quick=True)
        b = generate_report(COFFEE_LAKE_I7_9700, seed=231, rounds=10, quick=True)
        assert a == b
