"""Tests for the CampaignRunner: caching, resume, retry-with-backoff.

The acceptance contract from the campaign design: re-running a completed
campaign executes zero new cells, and a crashing worker is retried until
the campaign completes with aggregates *byte-identical* to an uninjected
run — the derived per-cell seed makes a healed cell indistinguishable
from an undisturbed one.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import (
    AxisPoint,
    CampaignRunner,
    CampaignSpec,
    TrialStore,
    campaign_status,
    run_cell,
)


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="runner-t",
        attacks=("variant1",),
        machines=("i7-9700",),
        axes=(AxisPoint(name="baseline"),),
        repeats=2,
        rounds=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def canonical(aggregates: dict) -> bytes:
    return json.dumps(aggregates, sort_keys=True, separators=(",", ":")).encode()


class CrashOnce:
    """Picklable fault injector: the repeat-1 cell crashes on first attempt.

    The marker file (not process state) records the crash, so the injector
    behaves identically in-process and across a fork/spawn pool worker.
    """

    def __init__(self, marker_dir: Path) -> None:
        self.marker = Path(marker_dir) / "crashed-once"

    def __call__(self, cell):
        if cell.repeat == 1 and not self.marker.exists():
            self.marker.write_text("injected")
            raise RuntimeError("injected worker crash")
        return run_cell(cell)


class CrashAlways:
    def __init__(self, repeat: int = 1) -> None:
        self.repeat = repeat

    def __call__(self, cell):
        if cell.repeat == self.repeat:
            raise RuntimeError("persistent injected crash")
        return run_cell(cell)


class TestCaching:
    def test_second_run_is_all_cached_and_byte_identical(self, tmp_path):
        spec = small_spec()
        runner = CampaignRunner(TrialStore(tmp_path / "store"))
        first = runner.run(spec)
        assert first.complete
        assert first.executed_count == spec.n_cells
        assert first.cached_count == 0
        second = runner.run(spec)
        assert second.all_cached
        assert second.executed_count == 0
        assert canonical(first.aggregates()) == canonical(second.aggregates())

    def test_cache_shared_across_campaign_names(self, tmp_path):
        store = TrialStore(tmp_path / "store")
        CampaignRunner(store).run(small_spec(name="alpha"))
        result = CampaignRunner(store).run(small_spec(name="beta"))
        assert result.all_cached

    def test_status_tracks_store_contents(self, tmp_path):
        spec = small_spec()
        store = TrialStore(tmp_path / "store")
        before = campaign_status(spec, store)
        assert not before.all_cached
        assert len(before.pending) == spec.n_cells
        CampaignRunner(store).run(spec)
        after = campaign_status(spec, store)
        assert after.all_cached
        assert after.as_dict()["pending"] == 0


class TestFaultIsolationAndRetry:
    def test_injected_crash_is_retried_to_identical_aggregates(self, tmp_path):
        spec = small_spec()
        clean = CampaignRunner(TrialStore(tmp_path / "clean")).run(spec)
        injected = CampaignRunner(
            TrialStore(tmp_path / "injected"),
            run_cell_fn=CrashOnce(tmp_path),
            backoff_seconds=0.0,
        ).run(spec)
        assert injected.complete
        crashed = [o for o in injected.outcomes if o.attempts == 2]
        assert len(crashed) == 1
        assert crashed[0].cell.repeat == 1
        assert canonical(clean.aggregates()) == canonical(injected.aggregates())

    def test_sibling_cells_survive_a_crashing_cell(self, tmp_path):
        spec = small_spec()
        result = CampaignRunner(
            TrialStore(tmp_path / "store"),
            run_cell_fn=CrashAlways(),
            max_attempts=2,
            backoff_seconds=0.0,
        ).run(spec)
        assert not result.complete
        assert result.executed_count == spec.n_cells - 1
        (failed,) = result.failed
        assert failed.attempts == 2
        assert "persistent injected crash" in failed.error
        assert "persistent injected crash" in failed.error_summary

    def test_failed_cell_resumes_on_next_invocation(self, tmp_path):
        spec = small_spec()
        store = TrialStore(tmp_path / "store")
        broken = CampaignRunner(
            store, run_cell_fn=CrashAlways(), max_attempts=1, backoff_seconds=0.0
        ).run(spec)
        assert len(broken.failed) == 1
        healed = CampaignRunner(store).run(spec)
        assert healed.complete
        assert healed.cached_count == spec.n_cells - 1
        assert healed.executed_count == 1

    def test_resumed_campaign_matches_uninterrupted_run(self, tmp_path):
        spec = small_spec()
        clean = CampaignRunner(TrialStore(tmp_path / "clean")).run(spec)
        store = TrialStore(tmp_path / "resumed")
        CampaignRunner(
            store, run_cell_fn=CrashAlways(), max_attempts=1, backoff_seconds=0.0
        ).run(spec)
        resumed = CampaignRunner(store).run(spec)
        assert canonical(clean.aggregates()) == canonical(resumed.aggregates())

    def test_pool_path_heals_crash_too(self, tmp_path):
        spec = small_spec()
        clean = CampaignRunner(TrialStore(tmp_path / "clean")).run(spec)
        injected = CampaignRunner(
            TrialStore(tmp_path / "pooled"),
            jobs=2,
            run_cell_fn=CrashOnce(tmp_path),
            backoff_seconds=0.0,
        ).run(spec)
        assert injected.complete
        assert canonical(clean.aggregates()) == canonical(injected.aggregates())

    def test_corrupted_store_record_is_re_executed(self, tmp_path):
        spec = small_spec(repeats=1)
        store = TrialStore(tmp_path / "store")
        CampaignRunner(store).run(spec)
        (shard,) = list((tmp_path / "store" / "shards").iterdir())
        shard.write_text(shard.read_text()[:40])  # truncate the record
        rerun = CampaignRunner(TrialStore(tmp_path / "store")).run(spec)
        assert rerun.complete
        assert rerun.executed_count == 1


class TestResultViews:
    def test_repeats_merge_into_one_group(self, tmp_path):
        spec = small_spec(repeats=2, rounds=3)
        result = CampaignRunner(TrialStore(tmp_path / "store")).run(spec)
        merged = result.merged()
        assert set(merged) == {"variant1/i7-9700/baseline"}
        batch = merged["variant1/i7-9700/baseline"]
        assert batch.n_trials == sum(
            o.batch.n_trials for o in result.outcomes if o.batch
        )
        assert batch.notes["merged_batches"] == 2

    def test_as_dict_is_json_serializable(self, tmp_path):
        result = CampaignRunner(TrialStore(tmp_path / "store")).run(small_spec())
        json.dumps(result.as_dict())


class TestValidation:
    def test_unknown_experiment_rejected(self, tmp_path):
        runner = CampaignRunner(TrialStore(tmp_path / "store"))
        with pytest.raises(ValueError, match="unknown experiment"):
            runner.run(small_spec(attacks=("rowhammer",)))

    def test_bad_runner_parameters_rejected(self, tmp_path):
        store = TrialStore(tmp_path / "store")
        with pytest.raises(ValueError, match="jobs"):
            CampaignRunner(store, jobs=0)
        with pytest.raises(ValueError, match="max_attempts"):
            CampaignRunner(store, max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            CampaignRunner(store, backoff_seconds=-1.0)
