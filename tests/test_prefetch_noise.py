"""Tests for the DCU, adjacent and streamer prefetchers (noise sources)."""

from repro.memsys.hierarchy import MemoryLevel
from repro.prefetch.adjacent import AdjacentPrefetcher
from repro.prefetch.base import LoadEvent
from repro.prefetch.dcu import DCUPrefetcher
from repro.prefetch.streamer import StreamerPrefetcher

LINE = 64


def event(addr, level=MemoryLevel.DRAM, ip=0x100):
    return LoadEvent(ip=ip, vaddr=addr, paddr=addr, hit_level=level)


def null_translate(_vaddr):
    return None


class TestDCU:
    def test_single_access_no_prefetch(self):
        dcu = DCUPrefetcher()
        assert dcu.observe(event(0x1000), null_translate) == []

    def test_ascending_pair_prefetches_next_line(self):
        dcu = DCUPrefetcher()
        dcu.observe(event(0x1000), null_translate)
        requests = dcu.observe(event(0x1040), null_translate)
        assert [r.paddr for r in requests] == [0x1080]
        assert requests[0].source == "dcu"

    def test_descending_pair_silent(self):
        dcu = DCUPrefetcher()
        dcu.observe(event(0x1040), null_translate)
        assert dcu.observe(event(0x1000), null_translate) == []

    def test_never_crosses_page(self):
        dcu = DCUPrefetcher()
        last = 4096 - 2 * LINE
        dcu.observe(event(last), null_translate)
        assert dcu.observe(event(last + LINE), null_translate) == []

    def test_clear(self):
        dcu = DCUPrefetcher()
        dcu.observe(event(0x1000), null_translate)
        dcu.clear()
        assert dcu.observe(event(0x1040), null_translate) == []


class TestAdjacent:
    def test_miss_fetches_buddy(self):
        adj = AdjacentPrefetcher()
        requests = adj.observe(event(0x1000), null_translate)
        assert [r.paddr for r in requests] == [0x1040]

    def test_buddy_is_symmetric(self):
        adj = AdjacentPrefetcher()
        requests = adj.observe(event(0x1040), null_translate)
        assert [r.paddr for r in requests] == [0x1000]

    def test_hits_do_not_trigger(self):
        adj = AdjacentPrefetcher()
        assert adj.observe(event(0x1000, MemoryLevel.L1), null_translate) == []
        assert adj.observe(event(0x1000, MemoryLevel.LLC), null_translate) == []

    def test_reach_is_one_line(self):
        """§7.1: strides > 4 lines cannot be confused with the DPL."""
        adj = AdjacentPrefetcher()
        requests = adj.observe(event(0x1000), null_translate)
        assert all(abs(r.paddr - 0x1000) <= 2 * LINE for r in requests)


class TestStreamer:
    def test_needs_confirmations(self):
        streamer = StreamerPrefetcher()
        assert streamer.observe(event(0x1000), null_translate) == []
        assert streamer.observe(event(0x1040), null_translate) == []

    def test_ascending_stream(self):
        streamer = StreamerPrefetcher()
        for i in range(3):
            requests = streamer.observe(event(0x1000 + i * LINE), null_translate)
        assert [r.paddr for r in requests] == [0x1000 + 3 * LINE, 0x1000 + 4 * LINE]

    def test_descending_stream(self):
        streamer = StreamerPrefetcher()
        base = 0x1000 + 10 * LINE
        for i in range(3):
            requests = streamer.observe(event(base - i * LINE), null_translate)
        assert [r.paddr for r in requests] == [base - 3 * LINE, base - 4 * LINE]

    def test_strided_access_not_a_stream(self):
        """A 7-line stride never looks sequential to the streamer."""
        streamer = StreamerPrefetcher()
        for i in range(6):
            assert streamer.observe(event(0x1000 + i * 7 * LINE), null_translate) == []

    def test_direction_change_resets(self):
        streamer = StreamerPrefetcher()
        for i in range(3):
            streamer.observe(event(0x1000 + i * LINE), null_translate)
        assert streamer.observe(event(0x1000 + LINE), null_translate) == []

    def test_tracking_table_bounded(self):
        streamer = StreamerPrefetcher()
        for page in range(64):
            streamer.observe(event(page * 4096), null_translate)
        assert len(streamer._streams) <= 16

    def test_stays_in_page(self):
        streamer = StreamerPrefetcher()
        base = 4096 - 3 * LINE
        for i in range(3):
            requests = streamer.observe(event(base + i * LINE), null_translate)
        assert all(r.paddr < 4096 for r in requests)
