"""Tests for the inclusive cache hierarchy and the LLC slice hash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.hierarchy import CacheHierarchy, MemoryLevel
from repro.memsys.slice_hash import SliceHash
from repro.params import COFFEE_LAKE_I7_9700, HASWELL_I7_4770
from repro.utils.rng import make_rng


@pytest.fixture
def hierarchy():
    return CacheHierarchy(COFFEE_LAKE_I7_9700)


class TestAccessPath:
    def test_cold_access_goes_to_dram(self, hierarchy):
        result = hierarchy.access(0x1000)
        assert result.level is MemoryLevel.DRAM
        assert not result.hit
        assert result.latency == COFFEE_LAKE_I7_9700.dram_latency

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(0x1000)
        result = hierarchy.access(0x1000)
        assert result.level is MemoryLevel.L1
        assert result.latency == COFFEE_LAKE_I7_9700.l1d.latency

    def test_fill_installs_in_all_levels(self, hierarchy):
        hierarchy.access(0x1000)
        assert hierarchy.l1.contains(0x1000)
        assert hierarchy.l2.contains(0x1000)
        assert hierarchy.llc_slice(0x1000).contains(0x1000)

    def test_latency_ordering(self, hierarchy):
        latencies = [hierarchy.latency_of(level) for level in MemoryLevel]
        assert latencies == sorted(latencies)


class TestPrefetchFills:
    def test_prefetch_lands_in_l2_not_l1(self, hierarchy):
        hierarchy.insert_prefetch(0x2000)
        assert not hierarchy.l1.contains(0x2000)
        assert hierarchy.l2.contains(0x2000)
        assert hierarchy.llc_slice(0x2000).contains(0x2000)

    def test_prefetched_access_is_l2_hit(self, hierarchy):
        hierarchy.insert_prefetch(0x2000)
        result = hierarchy.access(0x2000)
        assert result.level is MemoryLevel.L2
        # Below the paper's 120-cycle LLC-hit threshold.
        assert result.latency < COFFEE_LAKE_I7_9700.llc_hit_threshold

    def test_prefetch_counter(self, hierarchy):
        hierarchy.insert_prefetch(0x2000)
        hierarchy.insert_prefetch(0x3000)
        assert hierarchy.prefetch_fills == 2


class TestClflush:
    def test_flush_removes_from_all_levels(self, hierarchy):
        hierarchy.access(0x1000)
        hierarchy.clflush(0x1000)
        assert hierarchy.contains(0x1000) is None
        assert hierarchy.access(0x1000).level is MemoryLevel.DRAM

    def test_flush_is_line_granular(self, hierarchy):
        hierarchy.access(0x1000)
        hierarchy.access(0x1040)
        hierarchy.clflush(0x1000)
        assert hierarchy.contains(0x1040) is not None


class TestInclusivity:
    def test_llc_eviction_back_invalidates(self, hierarchy):
        """Evicting a line from the LLC must remove it from L1/L2 — the
        property Prime+Probe depends on (paper §5.1)."""
        target = 0x10000
        hierarchy.access(target)
        assert hierarchy.l1.contains(target)
        slice_cache = hierarchy.llc_slice(target)
        slice_id, set_index = hierarchy.llc_set_index(target)
        # Fill the target's LLC set with conflicting lines.
        ways = COFFEE_LAKE_I7_9700.llc.ways
        filled = 0
        candidate = target
        while filled < ways + 4:
            candidate += COFFEE_LAKE_I7_9700.llc.sets * 64  # same set index
            if hierarchy.llc_set_index(candidate) == (slice_id, set_index):
                hierarchy.access(candidate)
                filled += 1
        assert not slice_cache.contains(target)
        assert not hierarchy.l1.contains(target)
        assert not hierarchy.l2.contains(target)

    def test_flush_all(self, hierarchy):
        for i in range(32):
            hierarchy.access(i * 64)
        hierarchy.flush_all()
        assert all(hierarchy.contains(i * 64) is None for i in range(32))


class TestSliceHash:
    def test_slice_count_validation(self):
        with pytest.raises(ValueError):
            SliceHash(3)

    def test_single_slice_always_zero(self):
        h = SliceHash(1)
        assert h.slice_of(0xDEADBEEF) == 0

    @pytest.mark.parametrize("n_slices", [2, 4, 8])
    def test_slices_in_range(self, n_slices):
        h = SliceHash(n_slices)
        rng = make_rng(0)
        for addr in rng.integers(0, 2**33, 200):
            assert 0 <= h.slice_of(int(addr)) < n_slices

    def test_roughly_balanced(self):
        h = SliceHash(8)
        rng = make_rng(1)
        counts = np.zeros(8)
        n = 8000
        for addr in rng.integers(0, 2**33, n):
            counts[h.slice_of(int(addr))] += 1
        assert counts.min() > n / 8 * 0.8
        assert counts.max() < n / 8 * 1.2

    def test_deterministic(self):
        h = SliceHash(8)
        assert h.slice_of(0x12345678) == h.slice_of(0x12345678)

    def test_haswell_has_four_slices(self):
        hierarchy = CacheHierarchy(HASWELL_I7_4770)
        assert len(hierarchy.llc) == 4

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**33))
    def test_line_granularity(self, addr):
        """All bytes of one cache line map to the same slice."""
        h = SliceHash(8)
        line_start = (addr // 64) * 64
        assert h.slice_of(line_start) == h.slice_of(line_start + 63)
