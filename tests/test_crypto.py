"""Tests for the crypto victims: AES, RSA math, victims' load structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, SBOX, INV_SBOX, hamming_weight
from repro.crypto.power_model import PowerModel, PowerTraceParams
from repro.crypto.primes import RSAKey, generate_keypair, generate_prime, is_probable_prime
from repro.crypto.rsa import (
    MontgomeryLadderVictim,
    SquareAndMultiplyVictim,
    TimingConstantLadderVictim,
    montgomery_ladder_modexp,
)
from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits
from repro.utils.rng import make_rng


class TestAES:
    def test_fips197_vector(self):
        aes = AES128(bytes(range(16)))
        ct = aes.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_nist_sp800_38a_ecb_vector(self):
        aes = AES128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = aes.encrypt_block(bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"))
        assert ct.hex() == "3ad77bb40d7a3660a89ecaf32466ef97"

    def test_decrypt_inverts_encrypt(self):
        aes = AES128(b"0123456789abcdef")
        pt = bytes(range(16))
        assert aes.decrypt_block(aes.encrypt_block(pt)) == pt

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20)
    def test_roundtrip_property(self, key, pt):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(pt)) == pt

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))
        assert all(INV_SBOX[SBOX[x]] == x for x in range(256))

    def test_sbox_fixed_points(self):
        assert SBOX[0x00] == 0x63  # FIPS-197 appendix

    def test_first_round_outputs(self):
        aes = AES128(bytes(16))
        outputs = aes.first_round_sbox_outputs(bytes(16))
        assert outputs == [SBOX[0]] * 16

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_block_length_checked(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(b"short")

    def test_hamming_weight(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0xFF) == 8
        assert hamming_weight(0b1010) == 2


class TestPrimes:
    def test_known_primes(self):
        rng = make_rng(0)
        for p in (2, 3, 97, 7919):
            assert is_probable_prime(p, rng)

    def test_known_composites(self):
        rng = make_rng(0)
        for c in (1, 4, 100, 561, 7917):  # 561 is a Carmichael number
            assert not is_probable_prime(c, rng)

    def test_generated_prime_has_exact_bits(self):
        rng = make_rng(1)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p, rng)

    def test_keypair_roundtrip(self):
        key = generate_keypair(128, make_rng(2))
        message = 0x1234_5678
        assert key.decrypt(key.encrypt(message)) == message

    def test_keypair_consistency(self):
        key = generate_keypair(128, make_rng(3))
        assert key.n == key.p * key.q
        assert (key.e * key.d) % ((key.p - 1) * (key.q - 1)) == 1

    def test_bad_sizes_rejected(self):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            generate_prime(4, rng)
        with pytest.raises(ValueError):
            generate_keypair(31, rng)

    def test_message_range_checked(self):
        key = generate_keypair(64, make_rng(4))
        with pytest.raises(ValueError):
            key.encrypt(key.n)


class TestLadderMath:
    @given(
        st.integers(min_value=2, max_value=2**40),
        st.integers(min_value=1, max_value=2**40),
        st.integers(min_value=3, max_value=2**40),
    )
    @settings(max_examples=50)
    def test_matches_pow(self, base, exp, mod):
        assert montgomery_ladder_modexp(base, exp, mod) == pow(base, exp, mod)

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            montgomery_ladder_modexp(2, 3, 0)


@pytest.fixture
def victim_setup(quiet_machine):
    ctx = quiet_machine.new_thread("rsa-victim")
    quiet_machine.context_switch(ctx)
    operands = quiet_machine.new_buffer(ctx.space, 2 * PAGE_SIZE)
    code = quiet_machine.code_region(0x400000, name="bignum")
    return quiet_machine, ctx, code, operands


class TestRSAVictims:
    @pytest.mark.parametrize(
        "victim_cls", [SquareAndMultiplyVictim, MontgomeryLadderVictim, TimingConstantLadderVictim]
    )
    def test_victims_compute_correctly(self, victim_setup, victim_cls):
        machine, ctx, code, operands = victim_setup
        victim = victim_cls(machine, ctx, code, operands)
        assert victim.modexp(7, 0b101101, 1019) == pow(7, 0b101101, 1019)

    def test_stepper_protocol(self, victim_setup):
        machine, ctx, code, operands = victim_setup
        victim = MontgomeryLadderVictim(machine, ctx, code, operands)
        victim.start(5, 0b1011, 999)
        steps = 0
        while victim.step():
            steps += 1
        assert steps + 1 == 4  # one step per exponent bit
        assert victim.result() == pow(5, 0b1011, 999)

    def test_step_before_start_rejected(self, victim_setup):
        machine, ctx, code, operands = victim_setup
        victim = MontgomeryLadderVictim(machine, ctx, code, operands)
        with pytest.raises(RuntimeError):
            victim.step()

    def test_result_before_done_rejected(self, victim_setup):
        machine, ctx, code, operands = victim_setup
        victim = MontgomeryLadderVictim(machine, ctx, code, operands)
        victim.start(5, 0b1011, 999)
        with pytest.raises(RuntimeError):
            victim.result()

    def test_branch_loads_have_distinct_indexes(self, victim_setup):
        machine, ctx, code, operands = victim_setup
        victim = TimingConstantLadderVictim(machine, ctx, code, operands)
        indexes = {
            low_bits(ip, 8)
            for ip in (victim.if_load_ip, victim.else_load_ip, victim.sign_if_ip, victim.sign_else_ip)
        }
        assert len(indexes) == 4

    def test_if_load_only_on_one_bits(self, victim_setup):
        machine, ctx, code, operands = victim_setup
        victim = MontgomeryLadderVictim(machine, ctx, code, operands)
        victim.modexp(5, 0b1000, 999)  # bits: 1,0,0,0
        entry_if = machine.ip_stride.entry_for_ip(victim.if_load_ip)
        entry_else = machine.ip_stride.entry_for_ip(victim.else_load_ip)
        assert entry_if is not None
        assert entry_else is not None

    def test_square_multiply_is_timing_leaky_but_ladder_is_not(self, victim_setup):
        """The motivation for the ladder: cycle counts must not depend on
        the key for the timing-constant engines."""
        machine, ctx, code, operands = victim_setup

        def cycles_for(victim_cls, exponent, label):
            local_code = machine.code_region(0x400000, name=label)
            victim = victim_cls(machine, ctx, local_code, operands)
            before = machine.cycles
            victim.modexp(5, exponent, 10**9 + 7)
            return machine.cycles - before

        heavy = 0b1111111
        light = 0b1000000
        sm_delta = abs(
            cycles_for(SquareAndMultiplyVictim, heavy, "sm-h")
            - cycles_for(SquareAndMultiplyVictim, light, "sm-l")
        )
        ladder_delta = abs(
            cycles_for(MontgomeryLadderVictim, heavy, "ml-h")
            - cycles_for(MontgomeryLadderVictim, light, "ml-l")
        )
        assert sm_delta > 10 * max(ladder_delta, 1)


class TestPowerModel:
    def test_trace_shape(self):
        model = PowerModel(AES128(bytes(16)), PowerTraceParams(), make_rng(0))
        trace = model.trace(bytes(16))
        assert trace.shape == (PowerTraceParams().n_samples,)

    def test_leak_sample_carries_hamming_weight(self):
        params = PowerTraceParams(noise_sigma=0.0, activity_sigma=0.0, hw_scale=1.0)
        aes = AES128(bytes(16))
        model = PowerModel(aes, params, make_rng(0))
        pt = bytes(range(16))
        trace = model.trace(pt)
        expected = params.baseline + sum(
            hamming_weight(b) for b in aes.first_round_sbox_outputs(pt)
        )
        assert trace[params.sbox_cycle] == pytest.approx(expected)

    def test_low_weight_plaintext_below_average(self):
        model = PowerModel(AES128(bytes(16)), PowerTraceParams(), make_rng(0))
        chosen = model.low_weight_plaintext(search_rounds=512)
        weight = sum(
            hamming_weight(b) for b in model.aes.first_round_sbox_outputs(chosen)
        )
        assert weight < 64  # expected weight of a random plaintext is 64

    def test_sbox_cycle_validated(self):
        with pytest.raises(ValueError):
            PowerTraceParams(n_samples=10, sbox_cycle=10)

    def test_traces_stack(self):
        model = PowerModel(AES128(bytes(16)), PowerTraceParams(), make_rng(0))
        stack = model.traces([bytes(16), bytes(range(16))])
        assert stack.shape == (2, PowerTraceParams().n_samples)
        with pytest.raises(ValueError):
            model.traces([])
