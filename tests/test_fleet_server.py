"""Tests for the fleet serving layer: HTTP daemon, cache, client.

The serving contract: every completed response is addressed by content
(cell key or filled-cell-set hash), so caching is safe to call
``immutable`` and ``If-None-Match`` revalidation is a bodyless 304; a
store being filled or merged underneath the daemon degrades gracefully
(partial aggregates say so, reports answer 503 + Retry-After) and heals
on the next request via ``TrialStore.refresh``.
"""

import http.client
import json

import pytest

from repro.campaign import AxisPoint, CampaignRunner, CampaignSpec, TrialStore
from repro.fleet import FleetClient, FleetServer, LruCache, start_in_thread
from repro.fleet.cache import CacheEntry
from repro.fleet.server import _etag_matches, canonical_body


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="served",
        attacks=("variant1",),
        machines=("i7-9700",),
        axes=(AxisPoint(name="baseline"),),
        repeats=2,
        rounds=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


FILLED = small_spec()
#: Same shape, different rounds — disjoint keys, so it reads as unfilled.
EMPTY = small_spec(name="unfilled", rounds=4)


@pytest.fixture(scope="module")
def filled_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet") / "store"
    result = CampaignRunner(TrialStore(root)).run(FILLED)
    assert result.complete
    return root


@pytest.fixture(scope="module")
def handle(filled_store):
    server = FleetServer(
        filled_store, campaigns={"served": FILLED, "unfilled": EMPTY}
    )
    with start_in_thread(server) as running:
        yield running


@pytest.fixture(scope="module")
def client(handle):
    return FleetClient(handle.server.host, handle.server.port)


class TestConstruction:
    def test_requires_a_store_marker(self, tmp_path):
        with pytest.raises(ValueError, match="not a TrialStore"):
            FleetServer(tmp_path / "nowhere")


class TestPlainEndpoints:
    def test_index_lists_endpoints(self, client):
        doc = client.get("/").json()
        assert doc["service"] == "repro.fleet"
        assert "/aggregate/<campaign>" in doc["endpoints"]

    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["shard_files"] >= 1
        assert sorted(doc["campaigns"]) == ["served", "unfilled"]

    def test_cells_lists_every_stored_key(self, client, filled_store):
        doc = client.cells()
        assert doc["count"] == FILLED.n_cells
        assert sorted(doc["keys"]) == sorted(TrialStore(filled_store).keys())

    def test_unknown_route_404(self, client):
        response = client.get("/no/such/route")
        assert response.status == 404

    def test_post_rejected_405(self, handle):
        connection = http.client.HTTPConnection(
            handle.server.host, handle.server.port, timeout=10
        )
        try:
            connection.request("POST", "/cells")
            response = connection.getresponse()
            assert response.status == 405
            assert response.getheader("Allow") == "GET, HEAD"
        finally:
            connection.close()

    def test_head_sends_headers_only(self, handle):
        connection = http.client.HTTPConnection(
            handle.server.host, handle.server.port, timeout=10
        )
        try:
            connection.request("HEAD", "/cells")
            response = connection.getresponse()
            assert response.status == 200
            assert int(response.getheader("Content-Length")) > 0
            assert response.read() == b""
        finally:
            connection.close()


class TestCellEndpoint:
    def test_cell_round_trips_with_immutable_etag(self, client):
        key = client.cells()["keys"][0]
        response = client.cell(key)
        assert response.status == 200
        assert response.etag == key
        assert "immutable" in response.headers["cache-control"]
        doc = response.json()
        assert doc["key"] == key
        assert doc["batch"]["attack"] == "variant1"

    def test_etag_revalidation_is_a_bodyless_304(self, client):
        key = client.cells()["keys"][0]
        first = client.cell(key)
        second = client.cell(key, etag=first.etag)
        assert second.not_modified
        assert second.body == b""
        assert second.etag == key

    def test_bad_key_400(self, client):
        assert client.cell("not-a-hash").status == 400

    def test_missing_key_404(self, client):
        assert client.cell("f" * 64).status == 404


class TestAggregateEndpoint:
    def test_complete_aggregate_matches_runner(self, client, filled_store):
        response = client.aggregate("served")
        assert response.status == 200
        doc = response.json()
        assert doc["complete"] is True
        assert doc["filled"] == doc["total"] == FILLED.n_cells
        expected = CampaignRunner(TrialStore(filled_store)).run(FILLED).aggregates()
        assert doc["aggregates"] == json.loads(json.dumps(expected))
        assert "immutable" in response.headers["cache-control"]

    def test_warm_aggregate_is_a_cache_hit(self, handle, client):
        before = handle.server.cache.stats.hits
        first = client.aggregate("served")
        second = client.aggregate("served")
        assert handle.server.cache.stats.hits > before
        assert second.body == first.body
        assert second.etag == first.etag

    def test_aggregate_revalidation_304(self, client):
        etag = client.aggregate("served").etag
        assert client.aggregate("served", etag=etag).not_modified

    def test_partial_aggregate_degrades_not_fails(self, client):
        response = client.aggregate("unfilled")
        assert response.status == 200
        doc = response.json()
        assert doc["complete"] is False
        assert doc["filled"] == 0
        assert doc["aggregates"] == {}
        assert response.headers["cache-control"] == "no-cache"

    def test_unknown_campaign_404(self, client):
        response = client.aggregate("moonshot")
        assert response.status == 404
        assert "served" in response.json()["known"]


class TestReportEndpoint:
    def test_complete_report_is_markdown(self, client):
        response = client.report("served")
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/markdown")
        assert response.text().startswith("## Campaign `served`")
        assert "immutable" in response.headers["cache-control"]

    def test_incomplete_report_503_with_retry_after(self, client):
        response = client.report("unfilled")
        assert response.status == 503
        assert response.headers["retry-after"] == "5"
        doc = response.json()
        assert doc["filled"] == 0
        assert doc["total"] == EMPTY.n_cells


class TestMetricsEndpoint:
    def test_metrics_counts_requests_and_cache(self, client):
        client.aggregate("served")
        doc = client.metrics()
        counters = doc["counters"] if "counters" in doc else doc
        flat = json.dumps(doc)
        assert "server.requests" in flat
        assert "cache.hits" in flat
        assert "store.corrupt_lines" in flat
        assert counters is not None

    def test_metrics_text_format(self, client):
        response = client.get("/metrics?format=text")
        assert response.headers["content-type"].startswith("text/plain")
        assert "server.requests" in response.text()


class TestLiveStoreRefresh:
    def test_daemon_sees_cells_filled_after_boot(self, tmp_path):
        # Boot the server over an empty store, then fill the campaign
        # from another handle (an atomic shard replace, like a fleet
        # worker or a merge would): the daemon's next request must see it.
        root = tmp_path / "store"
        spec = small_spec(name="late", repeats=1)
        TrialStore(root)  # create the marker so the server boots
        server = FleetServer(root, campaigns={"late": spec})
        with start_in_thread(server) as running:
            client = FleetClient(running.server.host, running.server.port)
            before = client.aggregate("late").json()
            assert before["complete"] is False
            stale_etag = client.aggregate("late").etag

            CampaignRunner(TrialStore(root)).run(spec)

            after = client.aggregate("late").json()
            assert after["complete"] is True
            assert after["filled"] == spec.n_cells
            # The address changed with the content: the old ETag no
            # longer revalidates, and the report now renders.
            assert not client.aggregate("late", etag=stale_etag).not_modified
            assert client.report("late").status == 200


class TestLruCache:
    def entry(self, body: bytes = b"x") -> CacheEntry:
        return CacheEntry(etag="e", body=body)

    def test_hit_miss_accounting(self):
        cache = LruCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", self.entry())
        assert cache.get("a") is not None
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        cache = LruCache(capacity=2)
        cache.put("a", self.entry())
        cache.put("b", self.entry())
        cache.get("a")  # now "b" is least recently used
        cache.put("c", self.entry())
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_body_bytes_tracks_contents(self):
        cache = LruCache(capacity=2)
        cache.put("a", self.entry(b"xxxx"))
        cache.put("a", self.entry(b"yy"))
        assert cache.stats.body_bytes == 2
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            LruCache(capacity=0)


class TestEtagMatching:
    def test_exact_and_quoted(self):
        assert _etag_matches('"abc"', "abc")
        assert _etag_matches("abc", "abc")

    def test_list_and_star(self):
        assert _etag_matches('"x", "abc"', "abc")
        assert _etag_matches("*", "abc")

    def test_no_match(self):
        assert not _etag_matches(None, "abc")
        assert not _etag_matches('"abc"', "def")
        assert not _etag_matches('"abc"', "")


class TestCanonicalBody:
    def test_sorted_and_newline_terminated(self):
        body = canonical_body({"b": 1, "a": 2})
        assert body == b'{"a":2,"b":1}\n'
