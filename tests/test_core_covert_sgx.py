"""Tests for the covert channel (§5.3) and the SGX attack (§5.4)."""

import pytest

from repro.core.covert import CovertChannel
from repro.core.sgx_attack import SGXControlFlowAttack
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.rng import make_rng


class TestCovertChannelQuiet:
    @pytest.fixture(scope="class")
    def channel(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=41)
        return CovertChannel(machine, n_entries=1)

    def test_single_symbol_roundtrip(self, channel):
        report = channel.transmit([30])  # the paper's b'11110 example
        assert report.rounds[0].received_value == 30

    def test_all_clean_symbols_roundtrip(self, channel):
        symbols = list(range(5, 32))
        report = channel.transmit(symbols)
        assert [r.received_value for r in report.rounds] == symbols
        assert report.error_rate == 0.0

    def test_bandwidth_in_paper_band(self, channel):
        """§7.2: 833 bps for the single-entry channel."""
        report = channel.transmit([7] * 40)
        assert 700 <= report.bandwidth_bps <= 950

    def test_symbol_alphabet_checked(self, channel):
        with pytest.raises(ValueError):
            channel.transmit([0])
        with pytest.raises(ValueError):
            channel.transmit([32])

    def test_symbol_count_must_match_entries(self, channel):
        with pytest.raises(ValueError):
            channel.send_symbols([5, 6])


class TestCovertChannelMultiEntry:
    def test_24_entries_raise_bandwidth_and_errors(self):
        """§7.2: training all 24 entries approaches 20 kbps but the switch
        traffic pushes the error rate past 25 %."""
        machine = Machine(COFFEE_LAKE_I7_9700, seed=42)
        channel = CovertChannel(machine, n_entries=24)
        rng = make_rng(0)
        symbols = [int(x) for x in rng.integers(5, 32, 240)]
        report = channel.transmit(symbols)
        assert report.bandwidth_bps > 15_000
        assert report.error_rate > 0.25

    def test_entry_count_validated(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=43)
        with pytest.raises(ValueError):
            CovertChannel(machine, n_entries=25)

    def test_entries_have_distinct_indexes(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=44)
        channel = CovertChannel(machine, n_entries=24)
        assert len({ip & 0xFF for ip in channel.entry_ips}) == 24


class TestSGXAttackQuiet:
    @pytest.mark.parametrize("secret", [0, 1])
    def test_secret_recovered(self, secret):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=45 + secret)
        attack = SGXControlFlowAttack(machine, secret=secret)
        result = attack.run_round()
        assert result.inferred_secret == secret

    def test_latency_gap_matches_appendix(self):
        """§A.8 / §7.2: the prefetched line reads far below the threshold,
        the other far above ('lower than 50 ... higher than 200')."""
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=47)
        attack = SGXControlFlowAttack(machine, secret=0)
        result = attack.run_round()
        assert result.time2 < 50  # stride 5 -> line 40 prefetched
        assert result.time1 > 200

    def test_check_lines(self):
        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=48)
        attack = SGXControlFlowAttack(machine, secret=1)
        assert attack.check_line_if_set == 24  # 3 * 8
        assert attack.check_line_if_clear == 40  # 5 * 8

    def test_noisy_success_rate(self):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=49)
        attack = SGXControlFlowAttack(machine, secret=1)
        successes = sum(attack.run_round().success for _ in range(40))
        assert successes >= 36


class TestTextCodec:
    def test_roundtrip(self):
        from repro.core.covert import decode_text, encode_text

        message = "attack at dawn"
        assert decode_text(encode_text(message)) == message

    def test_lost_symbols_decode_to_question_marks(self):
        from repro.core.covert import decode_text, encode_text

        symbols = encode_text("abc")
        symbols[1] = None
        assert decode_text(symbols) == "a?c"

    def test_unencodable_rejected(self):
        from repro.core.covert import encode_text

        import pytest

        with pytest.raises(ValueError):
            encode_text("attack at 9")

    def test_alphabet_stays_clean(self):
        from repro.core.covert import MIN_CLEAN_STRIDE, encode_text

        symbols = encode_text("the quick brown fox jumps over the lazy dog")
        assert all(MIN_CLEAN_STRIDE <= s <= 31 for s in symbols)

    def test_end_to_end_text_transmission(self):
        from repro.core.covert import CovertChannel, decode_text, encode_text
        from repro.cpu.machine import Machine
        from repro.params import COFFEE_LAKE_I7_9700

        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=300)
        channel = CovertChannel(machine, n_entries=1)
        message = "prefetchers leak"
        report = channel.transmit(encode_text(message))
        assert decode_text([r.received_value for r in report.rounds]) == message


class TestReliableTransmission:
    def test_repetition_coding_cleans_the_24_entry_channel(self):
        """§7.2's >25%-error configuration becomes dependable with a
        3x repetition code, at a net goodput still far above the
        single-entry channel."""
        
        from repro.core.covert import CovertChannel
        from repro.cpu.machine import Machine
        from repro.params import COFFEE_LAKE_I7_9700

        machine = Machine(COFFEE_LAKE_I7_9700, seed=310)
        channel = CovertChannel(machine, n_entries=24)
        rng = make_rng(310)
        symbols = [int(x) for x in rng.integers(5, 32, 240)]

        raw = channel.transmit(symbols)
        coded = channel.transmit_reliable(symbols, repetitions=3)
        assert raw.error_rate > 0.25
        assert coded.error_rate < 0.05
        assert coded.bandwidth_bps > 2_000  # net goodput >> 833 bps

    def test_repetitions_validated(self):
        from repro.core.covert import CovertChannel
        from repro.cpu.machine import Machine
        from repro.params import COFFEE_LAKE_I7_9700

        import pytest

        channel = CovertChannel(Machine(COFFEE_LAKE_I7_9700.quiet(), seed=311), 1)
        with pytest.raises(ValueError):
            channel.transmit_reliable([7], repetitions=0)

    def test_single_repetition_equals_plain_transmit(self):
        from repro.core.covert import CovertChannel
        from repro.cpu.machine import Machine
        from repro.params import COFFEE_LAKE_I7_9700

        machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=312)
        channel = CovertChannel(machine, n_entries=1)
        report = channel.transmit_reliable([7, 11, 30], repetitions=1)
        assert [r.received_value for r in report.rounds] == [7, 11, 30]
