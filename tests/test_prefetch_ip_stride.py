"""Tests for the IP-stride prefetcher — the paper's Algorithm 1 and §4 facts.

These tests drive the prefetcher directly with LoadEvents (white-box); the
microbenchmark-level validation lives in the revng tests.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.hierarchy import MemoryLevel
from repro.params import PAGE_SIZE, IPStrideParams
from repro.prefetch.base import LoadEvent
from repro.prefetch.ip_stride import IPStridePrefetcher

LINE = 64


def make_pf(**kwargs) -> IPStridePrefetcher:
    return IPStridePrefetcher(IPStrideParams(), **kwargs)


def load(pf, ip, addr, vaddr=None):
    """Feed one TLB-resident load; identity virtual mapping by default."""
    event = LoadEvent(
        ip=ip, vaddr=vaddr if vaddr is not None else addr, paddr=addr,
        hit_level=MemoryLevel.DRAM,
    )
    return pf.observe(event, lambda _v: None)


def train(pf, ip, base, stride, n):
    """n strided loads; returns all prefetch requests."""
    requests = []
    for i in range(n):
        requests.extend(load(pf, ip, base + i * stride))
    return requests


class TestAllocationAndConfidence:
    def test_first_access_creates_entry(self):
        pf = make_pf()
        assert load(pf, 0x100, 0x5000) == []
        entry = pf.entry_for_ip(0x100)
        assert entry is not None
        assert entry.confidence == 0
        assert entry.stride == 0

    def test_second_access_learns_stride(self):
        pf = make_pf()
        load(pf, 0x100, 0x5000)
        load(pf, 0x100, 0x5000 + 7 * LINE)
        entry = pf.entry_for_ip(0x100)
        assert entry.stride == 7 * LINE
        assert entry.confidence == 1

    def test_third_matching_access_prefetches(self):
        """Three iterations reach the threshold (paper §A.8: minimum 3)."""
        pf = make_pf()
        requests = train(pf, 0x100, 0x5000, 7 * LINE, 3)
        assert len(requests) == 1
        assert requests[0].paddr == 0x5000 + 3 * 7 * LINE
        assert pf.entry_for_ip(0x100).confidence == 2

    def test_confidence_saturates_at_3(self):
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 10)
        assert pf.entry_for_ip(0x100).confidence == 3

    def test_every_confident_access_prefetches(self):
        pf = make_pf()
        requests = train(pf, 0x100, 0x5000, 7 * LINE, 8)
        # Prefetches from access 3 onward.
        assert len(requests) == 6


class TestIndexing:
    def test_low_8_bits_only_no_tag(self):
        """Figure 6: any IP sharing the low 8 bits triggers the entry."""
        pf = make_pf()
        train(pf, 0x40_1020, 0x5000, 7 * LINE, 4)
        alias = 0x99_7720  # same low byte (0x20), different elsewhere
        requests = load(pf, alias, 0x9000)
        assert len(requests) == 1
        assert requests[0].paddr == 0x9000 + 7 * LINE

    def test_different_low_bits_different_entry(self):
        pf = make_pf()
        train(pf, 0x40_1020, 0x5000, 7 * LINE, 4)
        requests = load(pf, 0x40_1021, 0x9000)
        assert requests == []
        assert pf.occupancy == 2

    def test_entry_for_ip_respects_aliasing(self):
        pf = make_pf()
        load(pf, 0x123456, 0x5000)
        assert pf.entry_for_ip(0x9956) is pf.entry_for_ip(0x123456)


class TestUnconditionalTrigger:
    """The paper's 'key component' (§4.2 / Figure 7a, iteration 1)."""

    def test_trigger_fires_even_with_new_stride(self):
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)
        requests = load(pf, 0x100, 0x5000 + 4 * 7 * LINE + 3 * LINE)
        assert len(requests) == 1
        # Prefetch uses the *old* stride from the new address.
        assert requests[0].paddr == 0x5000 + 4 * 7 * LINE + 3 * LINE + 7 * LINE

    def test_mismatch_rewrites_stride_and_resets_confidence(self):
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)
        load(pf, 0x100, 0x5000 + 4 * 7 * LINE + 3 * LINE)
        entry = pf.entry_for_ip(0x100)
        # stride := current - last = (4*7+3) - 3*7 = 10 lines
        assert entry.stride == 10 * LINE
        assert entry.confidence == 1

    def test_figure_7a_retraining_takes_two_more(self):
        """After a stride change, iteration 2 is silent, iteration 3 fires."""
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)  # phase 1
        base = 0x5000 + 4 * 7 * LINE + 3 * LINE  # random offset
        assert len(load(pf, 0x100, base)) == 1  # old stride fires
        assert load(pf, 0x100, base + 5 * LINE) == []  # silent
        requests = load(pf, 0x100, base + 10 * LINE)  # new stride fires
        assert len(requests) == 1
        assert requests[0].paddr == base + 15 * LINE

    def test_figure_7b_offset_equal_to_new_stride(self):
        """Starting phase 2 exactly st_2 away trains in one less step."""
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)
        last = 0x5000 + 3 * 7 * LINE
        assert len(load(pf, 0x100, last + 5 * LINE)) == 1  # st_1 trigger
        requests = load(pf, 0x100, last + 10 * LINE)
        assert len(requests) == 1  # st_2 already fires
        assert requests[0].paddr == last + 15 * LINE


class TestStrideLimits:
    def test_stride_beyond_2kib_not_prefetched(self):
        pf = make_pf()
        train(pf, 0x100, 0x20_0000, 2048 + LINE, 5)
        assert pf.prefetches_issued == 0
        assert pf.prefetches_dropped_stride_cap > 0

    def test_max_stride_exactly_2kib_allowed(self):
        pf = make_pf()
        base = 0x40_0000
        requests = train(pf, 0x100, base, 2048, 3)
        assert len(requests) == 1

    def test_negative_stride(self):
        pf = make_pf()
        base = 0x40_0000 + 40 * LINE
        requests = train(pf, 0x100, base, -7 * LINE, 4)
        assert len(requests) == 2
        assert all(r.paddr < base for r in requests)

    def test_byte_granular_stride(self):
        """§4.2: strides need not be cache-line aligned."""
        pf = make_pf()
        requests = train(pf, 0x100, 0x40_0000, 100, 3)
        assert len(requests) == 1
        assert requests[0].paddr == 0x40_0000 + 300

    def test_prefetch_never_crosses_page(self):
        pf = make_pf()
        base = 0x40_0000 + PAGE_SIZE - 20 * LINE  # near page end
        train(pf, 0x100, base, 7 * LINE, 3)
        assert pf.prefetches_issued == 0
        assert pf.prefetches_dropped_page_cross > 0


class TestTLBMissPath:
    def test_tlb_miss_is_invisible(self):
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)
        before = pf.entry_for_ip(0x100)
        stride, conf, last = before.stride, before.confidence, before.last_paddr
        event = LoadEvent(ip=0x100, vaddr=0x9000, paddr=0x9000, hit_level=MemoryLevel.DRAM)
        assert pf.observe_tlb_miss(event) == []
        after = pf.entry_for_ip(0x100)
        assert (after.stride, after.confidence, after.last_paddr) == (stride, conf, last)

    def test_next_page_prefetcher_carries_over(self):
        """Table 1, locked row, offset 1: confident pattern continues onto
        the next *virtual* page even across a TLB miss."""
        pf = make_pf()
        vbase = 0x5000
        for i in range(4):
            load(pf, 0x100, 0x77_0000 + i * 7 * LINE, vaddr=vbase + i * 7 * LINE)
        next_vpage = (vbase // PAGE_SIZE + 1) * PAGE_SIZE
        event = LoadEvent(
            ip=0x100, vaddr=next_vpage, paddr=0x99_0000, hit_level=MemoryLevel.DRAM
        )
        requests = pf.observe_tlb_miss(event)
        assert len(requests) == 1
        assert requests[0].paddr == 0x99_0000 + 7 * LINE

    def test_next_page_disabled(self):
        pf = make_pf(enable_next_page=False)
        vbase = 0x5000
        for i in range(4):
            load(pf, 0x100, 0x77_0000 + i * 7 * LINE, vaddr=vbase + i * 7 * LINE)
        event = LoadEvent(
            ip=0x100, vaddr=(vbase // PAGE_SIZE + 1) * PAGE_SIZE,
            paddr=0x99_0000, hit_level=MemoryLevel.DRAM,
        )
        assert pf.observe_tlb_miss(event) == []

    def test_two_page_jump_does_not_carry(self):
        """Table 1, locked rows, offsets 2+: not prefetchable."""
        pf = make_pf()
        vbase = 0x5000
        for i in range(4):
            load(pf, 0x100, 0x77_0000 + i * 7 * LINE, vaddr=vbase + i * 7 * LINE)
        event = LoadEvent(
            ip=0x100, vaddr=(vbase // PAGE_SIZE + 2) * PAGE_SIZE,
            paddr=0x99_0000, hit_level=MemoryLevel.DRAM,
        )
        assert pf.observe_tlb_miss(event) == []


class TestCapacityAndReplacement:
    def test_capacity_is_24(self):
        pf = make_pf()
        for k in range(24):
            load(pf, 0x100 + k, 0x5000 + k * PAGE_SIZE)
        assert pf.occupancy == 24
        load(pf, 0x100 + 24, 0x5000 + 24 * PAGE_SIZE)
        assert pf.occupancy == 24
        assert pf.evictions == 1

    def test_confidence_zero_entries_evicted_first(self):
        pf = make_pf()
        # One trained (confident) entry plus 23 fresh ones.
        train(pf, 0x00, 0x40_0000, 7 * LINE, 4)
        for k in range(1, 24):
            load(pf, k, 0x50_0000 + k * PAGE_SIZE)
        load(pf, 24, 0x60_0000)  # allocation: must spare the trained entry
        assert pf.entry_for_ip(0x00) is not None
        assert pf.entry_for_ip(0x00).confidence == 3

    def test_clear_wipes_everything(self):
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)
        pf.clear()
        assert pf.occupancy == 0
        assert pf.entry_for_ip(0x100) is None
        assert pf.clears == 1

    def test_cleared_entry_must_retrain(self):
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)
        pf.clear()
        requests = train(pf, 0x100, 0x9000, 7 * LINE, 2)
        assert requests == []  # not confident yet


class TestPSCSemantics:
    """The state transitions AfterImage-PSC reads back (paper §6.1)."""

    def test_victim_touch_then_two_silent_checks(self):
        pf = make_pf()
        train(pf, 0x100, 0x5000, 7 * LINE, 4)
        # Victim load from an unrelated frame at an aliasing IP.
        load(pf, 0xAA00, 0x90_0000)
        # Attacker continues its progression: two silent steps, then fire.
        base = 0x5000 + 4 * 7 * LINE
        assert load(pf, 0x100, base) == []
        assert load(pf, 0x100, base + 7 * LINE) == []
        assert len(load(pf, 0x100, base + 14 * LINE)) == 1


@settings(max_examples=60)
@given(
    stride=st.integers(min_value=1, max_value=31).map(lambda s: s * LINE),
    n=st.integers(min_value=3, max_value=12),
)
def test_property_training_always_reaches_confidence(stride, n):
    pf = make_pf()
    base = 0x40_0000
    train(pf, 0x100, base, stride, n)
    entry = pf.entry_for_ip(0x100)
    assert entry.stride == stride
    assert entry.confidence >= 2


@settings(max_examples=60)
@given(
    ips=st.lists(st.integers(min_value=0, max_value=2**30), min_size=1, max_size=80),
)
def test_property_occupancy_bounded_and_indexes_unique(ips):
    pf = make_pf()
    for i, ip in enumerate(ips):
        load(pf, ip, 0x10_0000 + (i % 50) * PAGE_SIZE)
    assert pf.occupancy <= 24
    indexes = [e.index for e in pf.entries()]
    assert len(indexes) == len(set(indexes))


@settings(max_examples=40)
@given(
    accesses=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # which IP
            st.integers(min_value=0, max_value=60),  # line in page
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_prefetch_targets_stay_in_page(accesses):
    pf = make_pf()
    base = 0x40_0000
    for which, line in accesses:
        for request in load(pf, 0x100 + which, base + which * PAGE_SIZE + line * LINE):
            assert request.paddr // PAGE_SIZE == (base + which * PAGE_SIZE) // PAGE_SIZE
