"""Unit tests for repro.utils.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_rng, make_rng
from repro.utils.stats import mean, median, percentile, welch_t_statistic


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == pytest.approx(2.0)

    def test_median_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)

    def test_percentile(self):
        assert percentile(list(range(101)), 90) == pytest.approx(90.0)

    def test_empty_rejected(self):
        for fn in (mean, median):
            with pytest.raises(ValueError):
                fn([])
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestWelch:
    def test_identical_samples_zero(self):
        assert welch_t_statistic([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(0.0)

    def test_sign_convention(self):
        # mean(a) < mean(b) → negative t, the paper's Figure 16 convention.
        t = welch_t_statistic([1.0, 1.1, 0.9], [5.0, 5.1, 4.9])
        assert t < 0

    def test_magnitude_grows_with_n(self):
        rng = make_rng(0)
        a_small = list(rng.normal(0.0, 1.0, 50))
        b_small = list(rng.normal(1.0, 1.0, 50))
        a_big = list(rng.normal(0.0, 1.0, 5000))
        b_big = list(rng.normal(1.0, 1.0, 5000))
        assert abs(welch_t_statistic(a_big, b_big)) > abs(
            welch_t_statistic(a_small, b_small)
        )

    def test_zero_variance_equal_means(self):
        assert welch_t_statistic([2.0, 2.0], [2.0, 2.0]) == 0.0

    def test_zero_variance_different_means_is_infinite(self):
        assert math.isinf(welch_t_statistic([1.0, 1.0], [2.0, 2.0]))

    def test_too_small_samples_rejected(self):
        with pytest.raises(ValueError):
            welch_t_statistic([1.0], [1.0, 2.0])

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
    )
    def test_antisymmetry(self, a, b):
        t_ab = welch_t_statistic(a, b)
        t_ba = welch_t_statistic(b, a)
        if math.isfinite(t_ab):
            assert t_ab == pytest.approx(-t_ba, abs=1e-9)


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(7), make_rng(7)
        assert a.integers(0, 2**31) == b.integers(0, 2**31)

    def test_default_seed_is_stable(self):
        assert make_rng(None).integers(0, 2**31) == make_rng(None).integers(0, 2**31)

    def test_derived_streams_differ_by_label(self):
        parent1, parent2 = make_rng(7), make_rng(7)
        child_a = derive_rng(parent1, "timing")
        child_b = derive_rng(parent2, "frames")
        draws_a = [int(child_a.integers(0, 2**31)) for _ in range(4)]
        draws_b = [int(child_b.integers(0, 2**31)) for _ in range(4)]
        assert draws_a != draws_b

    def test_derivation_deterministic(self):
        c1 = derive_rng(make_rng(7), "timing")
        c2 = derive_rng(make_rng(7), "timing")
        assert int(c1.integers(0, 2**31)) == int(c2.integers(0, 2**31))
