"""Guard: docs/LINT.md's rule catalogue and ALL_RULES stay in sync.

Every registered rule must have a row in the catalogue table (plus
RL000, the engine-level syntax-error pseudo-rule), and the table must
not document rules that no longer exist — stale docs about a lint pass
are worse than no docs.
"""

import re
from pathlib import Path

from repro.lint.engine import SYNTAX_RULE_ID
from repro.lint.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_DOC = REPO_ROOT / "docs" / "LINT.md"

#: A catalogue row: a table line whose first cell is a rule id.
_ROW_RE = re.compile(r"^\|\s*(RL\d{3})\s*\|", re.MULTILINE)


def documented_rule_ids() -> set[str]:
    return set(_ROW_RE.findall(LINT_DOC.read_text()))


def registered_rule_ids() -> set[str]:
    return {rule_cls.rule_id for rule_cls in ALL_RULES}


def test_every_registered_rule_is_documented():
    missing = registered_rule_ids() - documented_rule_ids()
    assert not missing, (
        f"rules missing a docs/LINT.md catalogue row: {sorted(missing)}"
    )


def test_syntax_pseudo_rule_is_documented():
    assert SYNTAX_RULE_ID in documented_rule_ids(), (
        f"{SYNTAX_RULE_ID} (file does not parse) must stay in the catalogue"
    )


def test_no_stale_documented_rules():
    stale = documented_rule_ids() - registered_rule_ids() - {SYNTAX_RULE_ID}
    assert not stale, (
        f"docs/LINT.md documents rules that are not registered: {sorted(stale)}"
    )


def test_rule_ids_are_unique():
    ids = [rule_cls.rule_id for rule_cls in ALL_RULES]
    assert len(ids) == len(set(ids)), "duplicate rule id in ALL_RULES"
