"""Guard: the static passes' docs and their registries stay in sync.

Every registered lint rule must have a row in docs/LINT.md's catalogue
table (plus RL000, the engine-level syntax-error pseudo-rule), the table
must not document rules that no longer exist, and every ``EX``-prefixed
finding code the extraction scan can emit must have a documented row in
docs/LEAKCHECK.md — stale docs about a static pass are worse than no
docs.
"""

import re
from pathlib import Path

from repro.leakcheck.extract.scan import EXTRACT_CODES
from repro.lint.engine import SYNTAX_RULE_ID
from repro.lint.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_DOC = REPO_ROOT / "docs" / "LINT.md"
LEAKCHECK_DOC = REPO_ROOT / "docs" / "LEAKCHECK.md"

#: A catalogue row: a table line whose first cell is a rule id.
_ROW_RE = re.compile(r"^\|\s*(RL\d{3})\s*\|", re.MULTILINE)

#: An extractor finding-code row in docs/LEAKCHECK.md.
_EX_ROW_RE = re.compile(r"^\|\s*(EX\d{3})\s*\|", re.MULTILINE)


def documented_rule_ids() -> set[str]:
    return set(_ROW_RE.findall(LINT_DOC.read_text()))


def registered_rule_ids() -> set[str]:
    return {rule_cls.rule_id for rule_cls in ALL_RULES}


def test_every_registered_rule_is_documented():
    missing = registered_rule_ids() - documented_rule_ids()
    assert not missing, (
        f"rules missing a docs/LINT.md catalogue row: {sorted(missing)}"
    )


def test_syntax_pseudo_rule_is_documented():
    assert SYNTAX_RULE_ID in documented_rule_ids(), (
        f"{SYNTAX_RULE_ID} (file does not parse) must stay in the catalogue"
    )


def test_no_stale_documented_rules():
    stale = documented_rule_ids() - registered_rule_ids() - {SYNTAX_RULE_ID}
    assert not stale, (
        f"docs/LINT.md documents rules that are not registered: {sorted(stale)}"
    )


def test_rule_ids_are_unique():
    ids = [rule_cls.rule_id for rule_cls in ALL_RULES]
    assert len(ids) == len(set(ids)), "duplicate rule id in ALL_RULES"


def documented_extract_codes() -> set[str]:
    return set(_EX_ROW_RE.findall(LEAKCHECK_DOC.read_text()))


def test_every_extract_code_is_documented():
    missing = set(EXTRACT_CODES) - documented_extract_codes()
    assert not missing, (
        f"extractor codes missing a docs/LEAKCHECK.md table row: {sorted(missing)}"
    )


def test_no_stale_documented_extract_codes():
    stale = documented_extract_codes() - set(EXTRACT_CODES)
    assert not stale, (
        f"docs/LEAKCHECK.md documents unknown extractor codes: {sorted(stale)}"
    )
