"""Setup shim: lets `pip install -e . --no-use-pep517` work on machines
without the `wheel` package (this environment is offline)."""

from setuptools import setup

setup()
