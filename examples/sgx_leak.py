#!/usr/bin/env python3
"""Extracting an enclave secret through the shared prefetcher (§5.4, §A.8).

The enclave's loop stride depends on its secret (3 vs 5 cache lines over a
buffer shared with the untrusted zone).  The untrusted attacker flushes the
buffer, makes the ECALL, and times the two candidate prefetched lines
(3x8 = line 24 and 5x8 = line 40): whichever is cached names the stride —
and the secret.  No Prime+Probe or Flush+Reload of the enclave's own
memory is needed.

Run:  python examples/sgx_leak.py
"""

from repro import COFFEE_LAKE_I7_9700, Machine
from repro.core import SGXControlFlowAttack


def main() -> None:
    for secret in (0, 1):
        machine = Machine(COFFEE_LAKE_I7_9700, seed=18 + secret)
        attack = SGXControlFlowAttack(machine, secret=secret)
        result = attack.run_round()
        print(f"enclave secret = {secret}")
        print(
            f"  Time1 (line {attack.check_line_if_set}, stride-3 witness):   "
            f"{result.time1:4d} cycles"
        )
        print(
            f"  Time2 (line {attack.check_line_if_clear}, stride-5 witness): "
            f"{result.time2:4d} cycles"
        )
        print(f"  attacker infers secret = {result.inferred_secret}  "
              f"[{'correct' if result.success else 'WRONG'}]")

        rounds = [attack.run_round() for _ in range(100)]
        rate = sum(r.success for r in rounds) / len(rounds)
        print(f"  success over 100 rounds: {rate * 100:.0f}%\n")

    print(
        "the same mechanism with the branch removed is the SGX covert channel:\n"
        "an in-enclave sender picks the stride; the untrusted receiver reads it."
    )


if __name__ == "__main__":
    main()
