#!/usr/bin/env python3
"""Reverse-engineer the IP-stride prefetcher, as the paper's §4 does.

Runs all five microbenchmark families (Listings 2-5 plus the SGX interplay
probe) against the simulated machine and prints the findings — the same
facts the paper's Figures 6-8 and Table 1 establish on real silicon.

Run:  python examples/reverse_engineer.py [--machine i7-4770|i7-9700]
"""

import argparse

from repro import preset
from repro.revng import (
    EntryCountExperiment,
    IndexingExperiment,
    PageBoundaryExperiment,
    ReplacementPolicyExperiment,
    SGXInterplayExperiment,
    StrideUpdateExperiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="i7-9700")
    args = parser.parse_args()
    params = preset(args.machine)
    print(f"reverse-engineering the IP-stride prefetcher on {params.name}\n")

    # 1. Indexing (Listing 2 -> Figure 6)
    samples = IndexingExperiment(params).run()
    first_hit = next(s.matched_bits for s in samples if s.prefetched)
    tagless = all(s.prefetched for s in samples if s.matched_bits >= first_hit)
    print(f"[indexing]     entry index = low {first_hit} bits of the load IP; "
          f"no tag over the rest: {tagless}")

    # 2. Update policy (Listing 3 -> Figure 7)
    flags = StrideUpdateExperiment(params).run()
    print(
        "[update]       confident entries trigger *unconditionally* "
        f"(old stride fires on retrain access #1: {flags[0].st1_triggered}); "
        f"a stride change then needs {next(s.iteration for s in flags if s.st2_triggered) - 1} "
        "accesses to re-train"
    )

    # 3. Page boundaries (Listing 4 -> Table 1)
    rows = PageBoundaryExperiment(params).run()
    lock1 = next(r for r in rows if r.pool == "lock" and r.virtual_page_offset == 1)
    lock2 = next(r for r in rows if r.pool == "lock" and r.virtual_page_offset == 2)
    print(
        "[pages]        prefetches never cross the physical frame; "
        f"next virtual page carried over by the next-page prefetcher: {lock1.prefetchable}; "
        f"two pages ahead: {lock2.prefetchable}"
    )

    # 4. Capacity (Listing 5 -> Figure 8a)
    entries = EntryCountExperiment(params)
    survivors30 = sum(s.triggered for s in entries.run(30))
    print(f"[capacity]     ~{survivors30} of 30 trained IPs survive -> 24-entry table")

    # 5. Replacement (Figure 8b)
    replacement = ReplacementPolicyExperiment(params)
    evicted = replacement.evicted_inputs(replacement.run())
    contiguous = evicted == list(range(min(evicted), min(evicted) + len(evicted)))
    print(
        f"[replacement]  refreshed entries survive (not FIFO); evictions are the "
        f"contiguous run {min(evicted)}..{max(evicted)} ({contiguous}) -> Bit-PLRU-like"
    )

    # 6. SGX interplay (§4.6)
    if params.sgx_supported:
        interplay = SGXInterplayExperiment(params).run()
        print(
            f"[sgx]          enclave-triggered prefetches survive EEXIT: "
            f"{interplay.prefetched_survives_exit} "
            f"({interplay.prefetched_line_latency} vs {interplay.untouched_line_latency} cycles)"
        )
    else:
        print("[sgx]          (machine has no SGX; run with --machine i7-9700)")


if __name__ == "__main__":
    main()
