#!/usr/bin/env python3
"""Evaluate the paper's defense options (§8.2-§8.3) against AfterImage.

Four configurations face the same Variant-1 attacker and covert channel:

1. no defense (the vulnerable baseline),
2. the §8.3 clear-ip-prefetcher flush on every domain switch,
3. a (asid, full-IP)-tagged history table (§8.2's hardware fix),
4. an obliviously rewritten victim (§8.2's developer fix).

Then the performance side: what each hardware option costs a streaming
workload, via the ChampSim-lite IPC model.

Run:  python examples/defense_evaluation.py
"""

from repro import COFFEE_LAKE_I7_9700, PAGE_SIZE, Machine
from repro.core import CovertChannel, TrainingGadget, Variant1CrossProcess
from repro.defenses import ObliviousBranchVictim, harden_machine
from repro.mitigation import ChampSimLite
from repro.mitigation.traces import generate_trace, suite_by_name
from repro.utils.rng import make_rng

ROUNDS = 40


def variant1_success(machine: Machine) -> float:
    attack = Variant1CrossProcess(machine)
    return sum(attack.run_round(i % 2).success for i in range(ROUNDS)) / ROUNDS


def covert_delivery(machine: Machine) -> float:
    rng = make_rng(1)
    symbols = [int(x) for x in rng.integers(5, 32, ROUNDS)]
    report = CovertChannel(machine, n_entries=1).transmit(symbols)
    return 1 - report.error_rate


def oblivious_leak(machine: Machine) -> float:
    """Attack the oblivious victim; score by distinguishability."""
    space = machine.new_address_space("victim")
    vctx = machine.new_thread("victim", space)
    actx = machine.new_thread("attacker")
    machine.context_switch(actx)
    data = machine.new_buffer(space, PAGE_SIZE)
    victim = ObliviousBranchVictim(machine, vctx, data)
    gadget = TrainingGadget(machine, actx, victim.if_ip, victim.else_ip)
    coin = make_rng(2)
    correct = 0
    for i in range(ROUNDS):
        bit = i % 2
        machine.context_switch(actx)
        gadget.train()
        machine.context_switch(vctx)
        victim.run(bit, 20)
        machine.context_switch(actx)
        if_conf, else_conf = gadget.confidences()
        # Best-effort guess: whichever entry looks disturbed.
        if (if_conf or 0) < (else_conf or 0):
            guess = 1
        elif (else_conf or 0) < (if_conf or 0):
            guess = 0
        else:
            guess = int(coin.integers(0, 2))  # both disturbed: no information
        correct += guess == bit
    return correct / ROUNDS


def main() -> None:
    print("security: Variant-1 success / covert-channel delivery (40 rounds)\n")
    rows = []

    baseline = Machine(COFFEE_LAKE_I7_9700, seed=90)
    rows.append(("no defense", variant1_success(baseline),
                 covert_delivery(Machine(COFFEE_LAKE_I7_9700, seed=91))))

    flushing = Machine(COFFEE_LAKE_I7_9700, seed=92)
    flushing.flush_prefetcher_on_switch = True
    flushing2 = Machine(COFFEE_LAKE_I7_9700, seed=93)
    flushing2.flush_prefetcher_on_switch = True
    rows.append(("clear-ip-prefetcher (§8.3)", variant1_success(flushing),
                 covert_delivery(flushing2)))

    tagged = Machine(COFFEE_LAKE_I7_9700, seed=94)
    harden_machine(tagged)
    tagged2 = Machine(COFFEE_LAKE_I7_9700, seed=95)
    harden_machine(tagged2)
    rows.append(("tagged history table (§8.2)", variant1_success(tagged),
                 covert_delivery(tagged2)))

    for name, v1, cc in rows:
        print(f"  {name:30s} V1 {v1 * 100:5.1f}%   covert {cc * 100:5.1f}%")

    obl = oblivious_leak(Machine(COFFEE_LAKE_I7_9700.quiet(), seed=96))
    print(f"  {'oblivious victim (§8.2)':30s} V1 {obl * 100:5.1f}%   (coin-flip = 50%)")

    print("\nperformance on a streaming workload (libquantum-like):")
    spec = suite_by_name("libquantum-like")
    ips, addrs = generate_trace(spec, 40_000)
    on = ChampSimLite(COFFEE_LAKE_I7_9700).run("x", ips, addrs).ipc
    off = ChampSimLite(COFFEE_LAKE_I7_9700, prefetcher_enabled=False).run("x", ips, addrs).ipc
    flushed = ChampSimLite(COFFEE_LAKE_I7_9700, flush_period_cycles=30_000).run(
        "x", ips, addrs
    ).ipc
    print(f"  prefetcher on:        IPC {on:.3f}")
    print(f"  flush every 10 us:    IPC {flushed:.3f}  ({(1 - flushed / on) * 100:.2f}% cost)")
    print(f"  prefetcher disabled:  IPC {off:.3f}  ({(1 - off / on) * 100:.0f}% cost)")
    print("  tagged table:         IPC as baseline (owner entries unaffected)")
    print("\nconclusion: the paper's flush (or a tagged table) closes the channel")
    print("for ~0.7% — disabling the prefetcher costs orders of magnitude more.")


if __name__ == "__main__":
    main()
