#!/usr/bin/env python3
"""Quickstart: leak one secret-dependent branch with AfterImage.

Builds a simulated Coffee Lake machine, puts a victim process with the
paper's Listing 1 branch on it, and leaks the branch direction from a
separate attacker process using the Listing 6 gadget + Flush+Reload
(AfterImage-Cache, Variant 1 cross-process).

Run:  python examples/quickstart.py
"""

from repro import COFFEE_LAKE_I7_9700, Machine
from repro.core import Variant1CrossProcess


def main() -> None:
    machine = Machine(COFFEE_LAKE_I7_9700, seed=2023)
    attack = Variant1CrossProcess(machine, s1_lines=7, s2_lines=13)

    print("AfterImage Variant 1 (cross-process, Flush+Reload)")
    print(f"machine: {machine.params.name} ({machine.params.microarchitecture})")
    print(f"victim if-path load IP:   {attack.victim.if_ip:#x}")
    print(f"victim else-path load IP: {attack.victim.else_ip:#x}")
    print(f"gadget aliases:           {attack.gadget.if_ip:#x} / {attack.gadget.else_ip:#x}")
    print()

    secret = [1, 0, 1, 1, 0, 0, 1, 0]
    leaked = []
    for round_index, bit in enumerate(secret):
        result = attack.run_round(bit)
        leaked.append(result.inferred_bit)
        print(
            f"round {round_index}: victim took {'if' if bit else 'else'}-path, "
            f"hot lines {result.hot_lines} -> leaked bit {result.inferred_bit}"
        )

    print()
    print(f"secret bits: {secret}")
    print(f"leaked bits: {leaked}")
    correct = sum(a == b for a, b in zip(secret, leaked))
    print(f"accuracy: {correct}/{len(secret)}")


if __name__ == "__main__":
    main()
