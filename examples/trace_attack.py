#!/usr/bin/env python3
"""Trace a Variant 1 attack and attribute its cycles phase by phase.

Runs the cross-process AfterImage branch leak with structured tracing
enabled, then uses the observability layer three ways:

* the cycle-attribution profiler shows where the simulated time went
  (train / prime / victim / probe),
* the in-memory ring buffer is queried for the prefetcher's own
  ``TableTransition`` history — the ground truth the attack infers,
* a Chrome ``trace_event`` file is written for chrome://tracing or
  https://ui.perfetto.dev.

Run:  python examples/trace_attack.py [--rounds N] [--out run.trace.json]
"""

import argparse
from collections import Counter

from repro.obs.runner import run_attack
from repro.obs.sinks import ChromeTraceSink, RingBufferSink
from repro.obs.tracer import Tracer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--out", default="run.trace.json")
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args()

    ring = RingBufferSink(capacity=None)
    chrome = ChromeTraceSink(args.out)
    tracer = Tracer([ring, chrome])
    run = run_attack("variant1", seed=args.seed, rounds=args.rounds, trace=tracer)
    tracer.close()

    print("AfterImage Variant 1, traced")
    print(f"result: {run.detail}  (quality {run.quality:.2f})")
    print()

    print("cycle attribution by phase:")
    print(run.machine.profile.render_text())
    print()

    counts = Counter(event.kind for event in ring.events())
    print("event stream:")
    for kind, count in counts.most_common():
        print(f"  {kind:<18} {count:>7}")
    print()

    transitions = ring.events("TableTransition")
    trained = [
        e for e in transitions
        if e.after is not None and e.after.confidence >= 2 and e.triggered
    ]
    print(
        f"prefetcher history: {len(transitions)} table transitions, "
        f"{len(trained)} confident triggering updates"
    )
    last = trained[-1]
    print(
        f"  last trigger: entry {last.index} stride {last.after.stride:+d} "
        f"confidence {last.after.confidence} at cycle {last.cycle}"
    )
    print()
    print(f"wrote {args.out} — open it in chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
