#!/usr/bin/env python3
"""End-to-end RSA key recovery from a timing-constant ladder (paper §6.2).

The victim decrypts with a real Montgomery-ladder engine whose two branch
directions perform identical work (the MbedTLS timing-constant pattern of
the paper's Figures 3-4) — yet the operand-preparation loads sit at
different IPs, which AfterImage-PSC distinguishes bit by bit.

Run:  python examples/leak_rsa_key.py [--bits 128]
"""

import argparse

from repro import COFFEE_LAKE_I7_9700, Machine
from repro.core import TimingConstantRSAAttack
from repro.crypto import generate_keypair
from repro.utils.rng import make_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=128, help="RSA modulus size")
    parser.add_argument("--seed", type=int, default=7, help="simulation seed")
    args = parser.parse_args()

    key = generate_keypair(args.bits, make_rng(args.seed))
    machine = Machine(COFFEE_LAKE_I7_9700, seed=args.seed)
    attack = TimingConstantRSAAttack(machine, key)

    print(f"victim: timing-constant Montgomery ladder, {key.modulus_bits}-bit modulus")
    print(f"private exponent: {key.private_exponent_bits} bits")
    print("attacking via AfterImage-PSC (train -> sched_yield -> check per bit)...")

    ciphertext = key.encrypt(0x5EC5E7)
    result = attack.recover_key_bits(ciphertext)

    usable = sum(len(obs.votes) for obs in result.observations)
    total = sum(obs.attempts for obs in result.observations)
    print()
    print(f"passes over the key:       {result.passes}")
    print(f"PSC single-shot success:   {usable / total * 100:.0f}% (paper: 82%)")
    print(f"bit errors:                {result.bit_errors}")
    print(f"recovered d == true d:     {result.recovered_exponent == key.d}")
    print(f"simulated attack time:     {result.simulated_seconds * 1e3:.1f} ms")
    print(
        "projected wall clock for a 1024-bit key on the paper's testbed: "
        f"{result.projected_minutes_for_bits():.0f} minutes (paper: 188)"
    )
    if result.exact:
        message = pow(ciphertext, result.recovered_exponent, key.n)
        print(f"decrypting the ciphertext with the stolen key: {message:#x}")


if __name__ == "__main__":
    main()
