#!/usr/bin/env python3
"""AfterImage as a power-attack marker (paper §6.3, Figures 15-16).

Part 1: track *when* OpenSSL-RSA loads its key and decrypts, by polling the
prefetcher status at scheduling granularity (Figure 15's double-miss
signature).

Part 2: show why that matters — the TVLA t-test on AES power traces only
reveals leakage when sampled at the AfterImage-provided cycle (Figure 16).

Run:  python examples/power_attack_assist.py
"""

from repro import COFFEE_LAKE_I7_9700, Machine
from repro.analysis import TVLATest, tvla_sweep
from repro.core import LoadTimingTracker, OpenSSLRSAVictim


def track_openssl() -> None:
    print("== Figure 15: tracking OpenSSL-RSA load timing via PSC ==")
    machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=15)
    victim_ctx = machine.new_thread("openssl-rsa")
    victim = OpenSSLRSAVictim(machine, victim_ctx)
    tracker = LoadTimingTracker(machine, victim, target="key-load")
    samples = tracker.track()
    print("poll:  " + " ".join(f"{s.poll_index:4d}" for s in samples))
    print("cycles:" + " ".join(f"{s.latency:4d}" for s in samples))
    print("phase: " + " ".join(f"{s.victim_phase.value[:4]:>4s}" for s in samples))
    events = [s.poll_index for s in samples if not s.prefetcher_triggered]
    print(f"-> prefetcher status changed at polls {events}: the key load happened "
          f"at poll {events[0]} (the second miss is the §4.2 retraining step)\n")


def run_ttest() -> None:
    print("== Figure 16: TVLA t-test with vs without the AfterImage marker ==")
    counts = [25, 50, 100, 200, 400, 800]
    accurate = tvla_sweep(TVLATest(seed=16), counts, accurate_timing=True)
    random = tvla_sweep(TVLATest(seed=17), counts, accurate_timing=False)
    print(f"{'#plaintexts':>12s} {'t (accurate)':>14s} {'t (random)':>12s}")
    for a, r in zip(accurate, random):
        flag = "  <- LEAKS (|t| > 4.5)" if a.leaks else ""
        print(f"{a.n_plaintexts:>12d} {a.t_value:>14.1f} {r.t_value:>12.1f}{flag}")
    print(
        "\nwith the marker the leakage assessment fails hard "
        f"(t = {accurate[-1].t_value:.1f}); without it the test never crosses "
        "the -4.5 threshold — timing is the attacker's missing ingredient."
    )


if __name__ == "__main__":
    track_openssl()
    run_ttest()
