#!/usr/bin/env python3
"""Cross-process covert channel through the IP-stride prefetcher (§5.3).

The sender encodes 5 bits per round as a prefetcher stride; the receiver
triggers the entry with an aliasing load and reads the stride back from
the cache footprint.  Transmits an ASCII message and reports bandwidth and
error rate for the single-entry and 24-entry configurations.

Run:  python examples/covert_channel.py [--message "..."]
"""

import argparse

from repro import COFFEE_LAKE_I7_9700, Machine
from repro.core import CovertChannel, decode_text as decode, encode_text as encode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--message", default="the quick brown fox jumps over the lazy dog")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    symbols = encode(args.message)

    machine = Machine(COFFEE_LAKE_I7_9700, seed=args.seed)
    channel = CovertChannel(machine, n_entries=1)
    report = channel.transmit(symbols)
    received = decode([r.received_value for r in report.rounds])
    print("single-entry channel (the paper's 833 bps configuration)")
    print(f"  sent:     {args.message!r}")
    print(f"  received: {received!r}")
    print(f"  bandwidth: {report.bandwidth_bps:.0f} bps   error: {report.error_rate * 100:.1f}%")
    print()

    machine24 = Machine(COFFEE_LAKE_I7_9700, seed=args.seed + 1)
    channel24 = CovertChannel(machine24, n_entries=24)
    padded = symbols + [31] * (-len(symbols) % 24)
    report24 = channel24.transmit(padded)
    received24 = decode([r.received_value for r in report24.rounds][: len(symbols)])
    print("24-entry channel (the ~20 kbps ceiling, error-prone)")
    print(f"  received: {received24!r}")
    print(
        f"  bandwidth: {report24.bandwidth_bps / 1000:.1f} kbps   "
        f"error: {report24.error_rate * 100:.1f}%  (paper: >25%)"
    )


if __name__ == "__main__":
    main()
