#!/usr/bin/env python3
"""Variant 2 end-to-end: spying on a kernel branch from user space (§5.2).

1. The kernel exposes the paper's Listing 7 vulnerable syscall, whose
   secret-dependent branch loads from user-shared memory.
2. The attacker locates the hidden kernel load's prefetcher index with the
   256-candidate IP search (KASLR does not disturb the low 8 IP bits).
3. It then leaks the branch direction of every subsequent syscall.

Also demonstrates the Figure 1 pattern: inferring which Bluetooth packet
type another user sent, from the kernel's per-type statistics load.

Run:  python examples/kernel_spy.py
"""

from repro import COFFEE_LAKE_I7_9700, PAGE_SIZE, Machine
from repro.core import Variant2UserKernel
from repro.kernel import BluetoothTxSyscall, Kernel
from repro.utils.rng import make_rng


def spy_on_vulnerable_syscall() -> None:
    rng = make_rng(11)
    machine = Machine(COFFEE_LAKE_I7_9700, seed=11)
    attack = Variant2UserKernel(machine, secret_source=lambda: int(rng.integers(0, 2)))

    print("== Variant 2: the vulnerable syscall (Listing 7) ==")
    result = attack.find_target_index()
    print(
        f"IP search: found index {result.index:#04x} "
        f"(truth: {attack.true_target_index:#04x}) "
        f"after {result.syscalls_used} syscalls"
    )

    rounds = [attack.run_round() for _ in range(20)]
    for i, r in enumerate(rounds):
        mark = "ok" if r.success else "WRONG"
        print(
            f"  call {i:2d}: kernel branch {'taken' if r.true_taken else 'not taken'}"
            f" -> leaked {'taken' if r.inferred_taken else 'not taken'} [{mark}]"
        )
    rate = sum(r.success for r in rounds) / len(rounds)
    print(f"success rate over {len(rounds)} calls: {rate * 100:.0f}% (paper: 91%)\n")


def spy_on_bluetooth() -> None:
    print("== Figure 1 pattern: which HCI packet type did the user send? ==")
    machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=12)
    kernel = Kernel(machine)
    bluetooth = BluetoothTxSyscall(kernel)
    user = machine.new_thread("bt-user")
    spy = machine.new_thread("spy")
    machine.context_switch(spy)

    # Train one prefetcher entry per switch arm, each with its own stride.
    trains = {}
    for pkt in bluetooth.PACKET_TYPES:
        buf = machine.new_buffer(spy.space, PAGE_SIZE)
        machine.warm_buffer_tlb(spy, buf)
        ip = 0x770000 + (bluetooth.case_ips[pkt] - 0x770000) % 256
        for i in range(3):
            machine.load(spy, ip, buf.line_addr(i * 7))
        trains[pkt] = ip

    machine.context_switch(user)
    secret_pkt = "HCI_SCODATA_PKT"
    bluetooth.send_frame(user, secret_pkt)
    machine.context_switch(spy)

    disturbed = [
        pkt
        for pkt, ip in trains.items()
        if (entry := machine.ip_stride.entry_for_ip(ip)) is None or entry.confidence < 2
    ]
    print(f"user secretly sent: {secret_pkt}")
    print(f"spy's verdict (disturbed entries): {disturbed}")
    assert disturbed == [secret_pkt]


if __name__ == "__main__":
    spy_on_vulnerable_syscall()
    spy_on_bluetooth()
