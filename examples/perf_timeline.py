#!/usr/bin/env python3
"""Where does a parallel attack-suite run spend its wall-clock?

Runs a (scaled-down) attack matrix through the instrumented
``TrialExecutor`` and walks the cross-process telemetry three ways:

* the attribution table partitions the parent's wall-clock into five
  named buckets (serialize / queue / compute / merge / serial) whose sum
  is the wall interval **by construction** — coverage is printed so you
  can check it,
* the per-worker lanes show which pid computed which task, how long it
  queued, and how many KiB crossed the pool in each direction,
* a Chrome ``trace_event`` file is written with one labeled process lane
  per worker — load it in chrome://tracing or https://ui.perfetto.dev.

The same data answers the `BENCH_attacks.json` puzzle (speedup < 1 at
``--jobs 2`` on a one-core container): the dominant bucket is compute
inflation from timesharing, not pickling or queueing.

Run:  python examples/perf_timeline.py [--jobs N] [--out perf.trace.json]
"""

import argparse
import dataclasses

from repro.attacks import TrialExecutor, attack_names, build_matrix, get_attack


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--rounds-scale",
        type=float,
        default=0.1,
        help="scale each attack's default rounds (keep runs short)",
    )
    parser.add_argument("--out", default="perf.trace.json")
    args = parser.parse_args()

    tasks = build_matrix(attack_names(), base_seed=args.seed)
    tasks = [
        dataclasses.replace(
            task,
            rounds=max(
                1, int(get_attack(task.attack).default_rounds * args.rounds_scale)
            ),
        )
        for task in tasks
    ]
    result = TrialExecutor(jobs=args.jobs, telemetry=True).run(tasks)
    timeline = result.telemetry
    assert timeline is not None

    print(f"attack suite through the executor, jobs={args.jobs}")
    for name, batch in result.merged.items():
        print(f"  {name:16s} quality {batch.quality:.2f}  ({batch.n_trials} trials)")
    print()
    print("where the time went")
    print(timeline.render_text())
    print()
    attribution = timeline.attribution()
    print(
        f"attribution covers {attribution['coverage'] * 100:.1f}% of the "
        f"{timeline.wall_seconds:.2f}s wall; dominant overhead bucket "
        f"(non-compute): {timeline.dominant_overhead()}"
    )

    timeline.write_chrome(args.out)
    print(
        f"wrote {args.out}: {len(timeline.records)} tasks across "
        f"{len(timeline.lanes())} worker lanes"
    )


if __name__ == "__main__":
    main()
