#!/usr/bin/env python3
"""Static leakage analysis: classify a victim without running the attack.

Describes a custom password-check gadget as a `VictimSpec`, asks
`repro.leakcheck` whether the IP-stride prefetcher leaks its secret bit,
prints the witness and the responsible entries, then (1) cross-checks the
static verdict by actually running the victim on the simulated machine,
and (2) shows the verdict flipping to safe under the §8.2 defenses.

Run:  python examples/static_leakcheck.py
"""

from repro.leakcheck import TraceLoad, VictimSpec, analyze, get_victim
from repro.leakcheck.dynamic import dynamic_leaky
from repro.params import CACHE_LINE_SIZE


def password_check_spec() -> VictimSpec:
    """if (password_bit) table[0] else table[8] — a classic early-exit."""
    return VictimSpec(
        name="password-check",
        description="early-exit comparison loading a bit-dependent line",
        secret_bits=1,
        labels={"match_load": 0x0040_2A11, "reject_load": 0x0040_2B64},
        region_pages={"table": 1},
        trace_fn=lambda bit: [
            TraceLoad("match_load", "table", 0)
            if bit
            else TraceLoad("reject_load", "table", 8 * CACHE_LINE_SIZE)
        ],
    )


def main() -> None:
    spec = password_check_spec()
    report = analyze(spec)

    print("repro.leakcheck static analysis")
    print(f"victim: {spec.name} — {spec.description}")
    print(f"verdict: {report.verdict} (severity {report.severity})")
    print(f"witness secret pair: {report.witness}")
    for entry in report.entries:
        print(
            f"  entry {entry.index:#04x}: {'/'.join(entry.kinds)} divergence "
            f"from {', '.join(entry.labels)}; attacker alias at "
            f"{entry.attacker_ip:#x}"
        )
    print()

    dynamic = dynamic_leaky(spec, seed=2023)
    agree = report.leaky == dynamic
    print(f"dynamic cross-check: {'leaky' if dynamic else 'safe'} "
          f"-> verdicts {'agree' if agree else 'DISAGREE'}")
    print()

    print("defense matrix (password-check and a paper victim):")
    rsa = get_victim("rsa-square-multiply").spec
    for defense in ("none", "tagged", "flush-on-switch"):
        own = analyze(spec, defense=defense).verdict
        paper = analyze(rsa, defense=defense).verdict
        print(f"  {defense:16s} password-check={own:5s} rsa-square-multiply={paper}")


if __name__ == "__main__":
    main()
