"""Figure 14b + §7.2: the cross-process covert channel.

Paper: a 5-bit symbol per round encoded as the trained stride (the figure
shows b'11110 = 30); single-entry bandwidth 833 bps at <6 % error; training
all 24 entries approaches 20 kbps at >25 % error.
"""

from benchmarks.conftest import print_series
from repro.core.covert import CovertChannel
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.rng import make_rng


def test_fig14b_stride_detection(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=143)
    channel = CovertChannel(machine, n_entries=1)
    report = benchmark.pedantic(lambda: channel.transmit([30]), rounds=1, iterations=1)
    round_result = report.rounds[0]
    print_series(
        "Figure 14b — receiver's view (secret b'11110 = stride 30)",
        [(line, "hit") for line in sorted(round_result.hot_lines)],
        ("#cache set", "class"),
    )
    assert round_result.received_value == 30


def test_single_entry_bandwidth_and_error(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=144)
    channel = CovertChannel(machine, n_entries=1)
    rng = make_rng(144)
    symbols = [int(x) for x in rng.integers(5, 32, 200)]
    report = benchmark.pedantic(lambda: channel.transmit(symbols), rounds=1, iterations=1)
    print(
        f"\nsingle-entry covert channel: {report.bandwidth_bps:.0f} bps, "
        f"error rate {report.error_rate * 100:.1f}% "
        f"(paper: 833 bps, < 6%)"
    )
    assert 700 <= report.bandwidth_bps <= 950
    assert report.error_rate < 0.06


def test_24_entry_bandwidth_and_error(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=145)
    channel = CovertChannel(machine, n_entries=24)
    rng = make_rng(145)
    symbols = [int(x) for x in rng.integers(5, 32, 480)]
    report = benchmark.pedantic(lambda: channel.transmit(symbols), rounds=1, iterations=1)
    print(
        f"\n24-entry covert channel: {report.bandwidth_bps / 1000:.1f} kbps, "
        f"error rate {report.error_rate * 100:.1f}% "
        f"(paper: close to 20 kbps, > 25%)"
    )
    assert 15_000 <= report.bandwidth_bps <= 22_000
    assert report.error_rate > 0.25
