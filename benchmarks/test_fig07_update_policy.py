"""Figure 7: confidence/stride update policy and the unconditional trigger.

Paper (7a): after retraining starts with a random offset, phase-2 access #1
still fires at the old stride st_1=7; #2 fires nothing; #3+ fire at st_2=5.
Paper (7b): when phase 2 starts exactly st_2 after phase 1, the new stride
fires one iteration earlier.
"""

from benchmarks.conftest import print_series
from repro.params import COFFEE_LAKE_I7_9700
from repro.revng.stride_policy import StrideUpdateExperiment


def _rows(samples):
    return [
        (s.iteration, "st1" if s.st1_triggered else "-", "st2" if s.st2_triggered else "-")
        for s in samples
    ]


def test_fig07a_random_offset(benchmark):
    exp = StrideUpdateExperiment(COFFEE_LAKE_I7_9700)
    samples = benchmark.pedantic(
        lambda: exp.run(st_1=7, st_2=5, offset_lines=3), rounds=1, iterations=1
    )
    print_series(
        "Figure 7a — phase-2 triggering (random offset between phases)",
        _rows(samples),
        ("iteration", "stride7", "stride5"),
    )
    flags = [(s.st1_triggered, s.st2_triggered) for s in samples]
    assert flags[0] == (True, False)
    assert flags[1] == (False, False)
    assert flags[2] == (False, True)


def test_fig07b_offset_equals_new_stride(benchmark):
    exp = StrideUpdateExperiment(COFFEE_LAKE_I7_9700)
    samples = benchmark.pedantic(
        lambda: exp.run(st_1=7, st_2=5, offset_lines=5), rounds=1, iterations=1
    )
    print_series(
        "Figure 7b — phase-2 triggering (phase 2 starts st_2 after phase 1)",
        _rows(samples),
        ("iteration", "stride7", "stride5"),
    )
    flags = [(s.st1_triggered, s.st2_triggered) for s in samples]
    assert flags[0] == (True, False)
    assert flags[1] == (False, True)  # fully trained one step earlier
