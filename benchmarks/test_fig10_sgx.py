"""Figure 10 / §5.4 / §A.8: the SGX side channel and covert channel.

Paper (§7.2 / §A.8): with the enclave secret = 0, Time1 (the stride-3
witness line, 3x8 = 24) reads above 200 cycles and Time2 (the stride-5
witness, 5x8 = 40) below 50 — and vice versa; the attacker always learns
the secret.  The covert variant transmits bits the same way with the
branch removed.
"""

from benchmarks.conftest import print_series
from repro.core.sgx_attack import SGXControlFlowAttack, SGXCovertChannel
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700


def test_fig10_side_channel(benchmark):
    def run_both():
        rows = []
        for secret in (0, 1):
            attack = SGXControlFlowAttack(
                Machine(COFFEE_LAKE_I7_9700, seed=190 + secret), secret=secret
            )
            result = attack.run_round()
            rows.append((secret, result.time1, result.time2, result.inferred_secret))
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_series(
        "Figure 10 / §A.8 — SGX side channel (Time1 = line 24, Time2 = line 40)",
        rows,
        ("secret", "Time1 (cycles)", "Time2 (cycles)", "inferred"),
    )
    for secret, time1, time2, inferred in rows:
        assert inferred == secret
        hot, cold = (time1, time2) if secret else (time2, time1)
        assert hot < 50  # §A.8: "lower than 50 cycles"
        assert cold > 200  # "higher than 200 cycles"


def test_fig10_covert_channel(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=192)
    channel = SGXCovertChannel(machine)
    bits = [1, 0, 1, 1, 0, 0, 1, 0]
    received = benchmark.pedantic(lambda: channel.transmit(bits), rounds=1, iterations=1)
    print(f"\nSGX covert channel: sent {bits} received {received}")
    assert received == bits


def test_sgx_success_rate(benchmark):
    def evaluate():
        ok = 0
        for seed in (193, 194):
            attack = SGXControlFlowAttack(
                Machine(COFFEE_LAKE_I7_9700, seed=seed), secret=seed % 2
            )
            ok += sum(attack.run_round().success for _ in range(50))
        return ok

    ok = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\nSGX extraction success: {ok}/100 rounds")
    assert ok >= 95
