"""Observability benchmark: wall-clock and simulated-cycle totals per attack.

Runs every attack the :mod:`repro.obs.runner` knows through one untraced
machine each and writes ``BENCH_obs.json`` — the `make bench` artifact that
lets sessions compare simulator throughput over time::

    python benchmarks/bench_obs.py --out BENCH_obs.json --rounds-scale 0.5

Wall-clock numbers come from the profiler's host-time column and are of
course machine-dependent; the simulated-cycle totals are deterministic for
a given seed and the real regression signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.obs.runner import ATTACK_NAMES, DEFAULT_ROUNDS, run_attack
from repro.params import preset

#: Bump when the JSON layout changes so downstream diffing can gate on it.
SCHEMA_VERSION = 1


def bench(
    machine_name: str, seed: int, rounds_scale: float, attacks: Sequence[str]
) -> dict:
    """Run each attack once; returns the JSON-ready result document."""
    params = preset(machine_name)
    results = []
    for name in attacks:
        rounds = max(1, int(DEFAULT_ROUNDS[name] * rounds_scale))
        run = run_attack(name, params, seed=seed, rounds=rounds)
        total = run.machine.profile["total"]
        results.append(
            {
                "attack": name,
                "rounds": rounds,
                "quality": run.quality,
                "detail": run.detail,
                "simulated_cycles": run.machine.cycles,
                "wall_seconds": round(total.wall_seconds, 4),
                "cycles_per_wall_second": (
                    round(run.machine.cycles / total.wall_seconds)
                    if total.wall_seconds > 0
                    else None
                ),
                "spans": run.machine.profile.as_dict(),
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "machine": machine_name,
        "seed": seed,
        "rounds_scale": rounds_scale,
        "results": results,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--machine", default="i7-9700")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--rounds-scale",
        type=float,
        default=1.0,
        help="multiply every attack's default round count (0.25 for a quick pass)",
    )
    parser.add_argument(
        "--attacks",
        nargs="*",
        default=list(ATTACK_NAMES),
        choices=ATTACK_NAMES,
        help="subset of attacks to run (default: all)",
    )
    args = parser.parse_args(argv)

    document = bench(args.machine, args.seed, args.rounds_scale, args.attacks)
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    for result in document["results"]:
        print(
            f"{result['attack']:16s} {result['rounds']:4d} rounds  "
            f"{result['simulated_cycles']:>13,} cycles  "
            f"{result['wall_seconds']:8.3f} s  quality {result['quality']:.2f}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
