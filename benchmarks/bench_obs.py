"""Observability benchmark: wall-clock and simulated-cycle totals per attack.

Runs every attack the :mod:`repro.attacks` registry knows — all eight,
including ``sgx`` and ``switch-leak``, which the old hand-wired table
missed — through one untraced machine each and writes ``BENCH_obs.json``,
the `make bench` artifact that lets sessions compare simulator throughput
over time.  A second artifact, ``BENCH_attacks.json``, times the same
suite through the :class:`~repro.attacks.executor.TrialExecutor` serially
and with ``--jobs N`` workers, recording both wall-clocks plus a check
that the merged per-attack success rates are identical — the executor's
determinism contract::

    python benchmarks/bench_obs.py --out BENCH_obs.json --rounds-scale 0.5
    python benchmarks/bench_obs.py --jobs 4   # records serial vs 4-worker

Wall-clock numbers come from the profiler's host-time column and are of
course machine-dependent (a single-CPU container shows no parallel
speedup); the simulated-cycle totals are deterministic for a given seed
and the real regression signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.attacks import TrialExecutor, attack_names, build_matrix, get_attack
from repro.bench import provenance
from repro.obs.runner import run_attack
from repro.params import preset

#: Bump when the JSON layout changes so downstream diffing can gate on it.
#: v3: provenance stamp + kind tag (`afterimage bench compare` gates on both).
SCHEMA_VERSION = 3


def bench(
    machine_name: str, seed: int, rounds_scale: float, attacks: Sequence[str]
) -> dict:
    """Run each attack once; returns the JSON-ready result document."""
    params = preset(machine_name)
    results = []
    for name in attacks:
        rounds = max(1, int(get_attack(name).default_rounds * rounds_scale))
        run = run_attack(name, params, seed=seed, rounds=rounds)
        total = run.machine.profile["total"]
        results.append(
            {
                "attack": name,
                "rounds": rounds,
                "quality": run.quality,
                "detail": run.detail,
                "simulated_cycles": run.machine.cycles,
                "wall_seconds": round(total.wall_seconds, 4),
                "cycles_per_wall_second": (
                    round(run.machine.cycles / total.wall_seconds)
                    if total.wall_seconds > 0
                    else None
                ),
                "spans": run.machine.profile.as_dict(),
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "kind": "obs",
        "provenance": provenance(),
        "machine": machine_name,
        "seed": seed,
        "rounds_scale": rounds_scale,
        "results": results,
    }


def bench_executor(
    machine_name: str,
    seed: int,
    rounds_scale: float,
    attacks: Sequence[str],
    jobs: int,
    repeats: int = 2,
) -> dict:
    """Time the suite through the executor, serial vs ``jobs`` workers."""
    params = preset(machine_name)
    from dataclasses import replace

    tasks = [
        replace(
            task,
            rounds=max(1, int(get_attack(task.attack).default_rounds * rounds_scale)),
        )
        for task in build_matrix(
            attacks, base_seed=seed, repeats=repeats, params=(params,)
        )
    ]
    serial = TrialExecutor(jobs=1).run(tasks)
    parallel = TrialExecutor(jobs=jobs).run(tasks)
    rates_match = all(
        serial.merged[name].quality == parallel.merged[name].quality
        and serial.merged[name].n_trials == parallel.merged[name].n_trials
        and serial.merged[name].simulated_cycles
        == parallel.merged[name].simulated_cycles
        for name in serial.merged
    )
    return {
        "schema": SCHEMA_VERSION,
        "kind": "attacks",
        "provenance": provenance(),
        "machine": machine_name,
        "seed": seed,
        "rounds_scale": rounds_scale,
        "n_tasks": len(tasks),
        "repeats": repeats,
        "jobs": jobs,
        "serial_wall_seconds": round(serial.wall_seconds, 4),
        "parallel_wall_seconds": round(parallel.wall_seconds, 4),
        "speedup": (
            round(serial.wall_seconds / parallel.wall_seconds, 3)
            if parallel.wall_seconds > 0
            else None
        ),
        "aggregates_identical": rates_match,
        "per_attack": {
            name: {
                "quality": batch.quality,
                "n_trials": batch.n_trials,
                "simulated_cycles": batch.simulated_cycles,
                "detail": batch.detail,
            }
            for name, batch in serial.merged.items()
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    names = attack_names()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--attacks-out", default="BENCH_attacks.json")
    parser.add_argument("--machine", default="i7-9700")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--rounds-scale",
        type=float,
        default=1.0,
        help="multiply every attack's default round count (0.25 for a quick pass)",
    )
    parser.add_argument(
        "--attacks",
        nargs="*",
        default=list(names),
        choices=names,
        help="subset of attacks to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker count for the executor comparison in BENCH_attacks.json",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="matrix repeats per attack in the executor comparison",
    )
    args = parser.parse_args(argv)

    document = bench(args.machine, args.seed, args.rounds_scale, args.attacks)
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    for result in document["results"]:
        print(
            f"{result['attack']:16s} {result['rounds']:4d} rounds  "
            f"{result['simulated_cycles']:>13,} cycles  "
            f"{result['wall_seconds']:8.3f} s  quality {result['quality']:.2f}"
        )
    print(f"wrote {args.out}")

    executor_doc = bench_executor(
        args.machine,
        args.seed,
        args.rounds_scale,
        args.attacks,
        jobs=args.jobs,
        repeats=args.repeats,
    )
    with open(args.attacks_out, "w") as handle:
        json.dump(executor_doc, handle, indent=2)
        handle.write("\n")
    print(
        f"executor: {executor_doc['n_tasks']} tasks  "
        f"serial {executor_doc['serial_wall_seconds']:.2f}s  "
        f"jobs={executor_doc['jobs']} {executor_doc['parallel_wall_seconds']:.2f}s  "
        f"speedup {executor_doc['speedup']}x  "
        f"aggregates identical: {executor_doc['aggregates_identical']}"
    )
    print(f"wrote {args.attacks_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
