"""§8.3: cost of the proposed clear-ip-prefetcher mitigation.

Paper: closed-form upper bound < 7.3 % at a 100 µs domain-switch period;
measured on ChampSim with a 10 µs flush period, the average normalized-IPC
reduction is 0.7 % over the top-8 prefetching-sensitive applications and
0.2 % over all tested applications.
"""

from benchmarks.conftest import print_series
from repro.mitigation.analytical import MitigationCostModel
from repro.mitigation.study import MitigationStudy
from repro.params import COFFEE_LAKE_I7_9700


def test_sec83_analytical_upper_bound(benchmark):
    model = MitigationCostModel()
    overhead = benchmark(model.overhead_percent)
    print(
        f"\nanalytical upper bound: {overhead:.2f}% "
        f"({model.cycles_per_switch} cycles per {model.period_cycles:.0f}-cycle period; "
        "paper: < 7.3%)"
    )
    assert 7.0 < overhead < 7.3


def test_sec83_champsim_overheads(benchmark):
    study = MitigationStudy(COFFEE_LAKE_I7_9700, n_instructions=60_000)
    results = benchmark.pedantic(study.run_suite, rounds=1, iterations=1)
    print_series(
        "§8.3 — per-workload IPC and flush overhead (10 µs flush period)",
        [
            (
                r.name,
                round(r.ipc_no_prefetch, 3),
                round(r.ipc_baseline, 3),
                round(r.ipc_flushed, 3),
                f"{r.prefetch_speedup:.2f}x",
                f"{r.flush_overhead * 100:.2f}%",
            )
            for r in results
        ],
        ("workload", "IPC no-pf", "IPC base", "IPC flushed", "pf speedup", "overhead"),
    )
    top8 = study.top_prefetch_sensitive(results)
    top8_overhead = study.average_overhead(top8)
    all_overhead = study.average_overhead(results)
    print(
        f"\ntop-8 prefetch-sensitive average: {top8_overhead * 100:.2f}% (paper: 0.7%)\n"
        f"all applications average:        {all_overhead * 100:.2f}% (paper: 0.2%)"
    )
    # Band assertions: sub-1 % everywhere, ordering preserved.
    assert 0.002 < top8_overhead < 0.012
    assert all_overhead < top8_overhead
    assert all_overhead < 0.006
    # Every single workload stays far below the analytic upper bound.
    assert all(r.flush_overhead < 0.073 for r in results)


def test_sec83_flush_period_ablation(benchmark):
    """Ablation: the paper's 100 µs syscall period costs ~10x less than
    the stress-test 10 µs period."""
    from repro.mitigation.traces import suite_by_name

    def evaluate():
        spec = suite_by_name("bwaves-like")
        fast = MitigationStudy(
            COFFEE_LAKE_I7_9700, n_instructions=60_000, flush_period_cycles=30_000
        ).run_workload(spec)
        slow = MitigationStudy(
            COFFEE_LAKE_I7_9700, n_instructions=60_000, flush_period_cycles=300_000
        ).run_workload(spec)
        return fast, slow

    fast, slow = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(
        f"\nbwaves-like: 10 µs flush {fast.flush_overhead * 100:.2f}% vs "
        f"100 µs flush {slow.flush_overhead * 100:.2f}%"
    )
    assert slow.flush_overhead < fast.flush_overhead
