"""Ablations over the design choices the paper (and DESIGN.md) call out.

* stride choice: strides within the DCU/adjacent/streamer reach (≤4 lines)
  are noise-prone; the paper's 7/11/13 primes are clean (§7.1);
* training length: 3 iterations are necessary and sufficient (§A.8);
* next-page prefetcher: disabling it removes the Table 1 lock/offset-1 row;
* §8.2 defenses: tagged prefetcher and flush-on-switch kill the leak, at
  measurably different costs.
"""

import dataclasses

from benchmarks.conftest import print_series
from repro.core.covert import CovertChannel
from repro.core.variant1 import Variant1CrossProcess
from repro.cpu.machine import Machine
from repro.defenses.tagged_prefetcher import harden_machine
from repro.mitigation.champsim_lite import ChampSimLite
from repro.mitigation.traces import generate_trace, suite_by_name
from repro.params import COFFEE_LAKE_I7_9700
from repro.revng.page_boundary import PageBoundaryExperiment
from repro.utils.rng import make_rng


def test_ablation_stride_choice(benchmark):
    """§7.1: strides beyond the companion prefetchers' reach are cleaner."""

    def success_for(s1, s2, seed):
        attack = Variant1CrossProcess(Machine(COFFEE_LAKE_I7_9700, seed=seed), s1, s2)
        return sum(attack.run_round(i % 2).success for i in range(60)) / 60

    def sweep():
        return {
            "paper strides 7/13": success_for(7, 13, 181),
            "small strides 2/3": success_for(2, 3, 182),
        }

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Ablation — stride choice vs success rate",
        [(name, f"{rate * 100:.0f}%") for name, rate in rates.items()],
        ("configuration", "success"),
    )
    assert rates["paper strides 7/13"] > rates["small strides 2/3"]
    assert rates["paper strides 7/13"] >= 0.9


def test_ablation_training_iterations(benchmark):
    """§A.8: two loads never reach the threshold; three are enough."""
    from repro.params import IPStrideParams, PAGE_SIZE
    from repro.prefetch.base import LoadEvent
    from repro.prefetch.ip_stride import IPStridePrefetcher
    from repro.memsys.hierarchy import MemoryLevel

    def confidence_after(n_loads: int) -> int:
        pf = IPStridePrefetcher(IPStrideParams())
        for i in range(n_loads):
            event = LoadEvent(
                ip=0x100, vaddr=0x5000 + i * 448, paddr=0x5000 + i * 448,
                hit_level=MemoryLevel.DRAM,
            )
            pf.observe(event, lambda _v: None)
        entry = pf.entry_for_ip(0x100)
        return entry.confidence if entry else -1

    results = benchmark.pedantic(
        lambda: {n: confidence_after(n) for n in range(1, 6)}, rounds=1, iterations=1
    )
    print_series(
        "Ablation — training loads vs confidence (threshold 2)",
        [(n, conf, "armed" if conf >= 2 else "") for n, conf in results.items()],
        ("loads", "confidence", "state"),
    )
    assert results[2] < 2 <= results[3]


def test_ablation_next_page_prefetcher(benchmark):
    """Table 1's lock/offset-1 row exists *because* of the next-page
    prefetcher; turning it off removes the row."""
    params_off = dataclasses.replace(
        COFFEE_LAKE_I7_9700, enable_next_page_prefetcher=False
    )

    def run_both():
        on = PageBoundaryExperiment(COFFEE_LAKE_I7_9700).run(max_offset=1)
        off = PageBoundaryExperiment(params_off).run(max_offset=1)
        return on, off

    on, off = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lock_on = next(r for r in on if r.pool == "lock")
    lock_off = next(r for r in off if r.pool == "lock")
    print(
        f"\nlock array, offset 1: prefetchable with next-page prefetcher: "
        f"{lock_on.prefetchable}; without: {lock_off.prefetchable}"
    )
    assert lock_on.prefetchable
    assert not lock_off.prefetchable


def test_ablation_defenses_vs_attacks(benchmark):
    """Security/performance matrix of the §8.2/§8.3 defenses."""

    def evaluate():
        rows = []
        rng = make_rng(183)
        symbols = [int(x) for x in rng.integers(5, 32, 30)]

        # Baseline: vulnerable.
        m = Machine(COFFEE_LAKE_I7_9700, seed=183)
        v1 = sum(Variant1CrossProcess(m).run_round(i % 2).success for i in range(30)) / 30
        cc = CovertChannel(Machine(COFFEE_LAKE_I7_9700, seed=184), 1).transmit(symbols)
        rows.append(("no defense", f"{v1 * 100:.0f}%", f"{(1 - cc.error_rate) * 100:.0f}%"))

        # Tagged prefetcher.
        m = Machine(COFFEE_LAKE_I7_9700, seed=185)
        harden_machine(m)
        v1 = sum(Variant1CrossProcess(m).run_round(i % 2).success for i in range(30)) / 30
        m2 = Machine(COFFEE_LAKE_I7_9700, seed=186)
        harden_machine(m2)
        cc = CovertChannel(m2, 1).transmit(symbols)
        rows.append(("tagged table", f"{v1 * 100:.0f}%", f"{(1 - cc.error_rate) * 100:.0f}%"))

        # Flush on switch (§8.3).
        m = Machine(COFFEE_LAKE_I7_9700, seed=187)
        m.flush_prefetcher_on_switch = True
        v1 = sum(Variant1CrossProcess(m).run_round(i % 2).success for i in range(30)) / 30
        m2 = Machine(COFFEE_LAKE_I7_9700, seed=188)
        m2.flush_prefetcher_on_switch = True
        cc = CovertChannel(m2, 1).transmit(symbols)
        rows.append(("flush on switch", f"{v1 * 100:.0f}%", f"{(1 - cc.error_rate) * 100:.0f}%"))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_series(
        "Ablation — defenses vs attack success",
        rows,
        ("defense", "V1 success", "covert delivery"),
    )
    baseline, tagged, flush = rows
    assert float(baseline[1].rstrip("%")) >= 90
    assert float(tagged[1].rstrip("%")) <= 55  # coin-flip or undecided
    assert float(flush[1].rstrip("%")) <= 55
    assert float(tagged[2].rstrip("%")) <= 10
    assert float(flush[2].rstrip("%")) <= 10


def test_ablation_disable_prefetcher_cost(benchmark):
    """§8.2: disabling the prefetcher closes the channel at a performance
    price the flush-based mitigation avoids."""
    spec = suite_by_name("libquantum-like")
    ips, addrs = generate_trace(spec, 40_000)

    def evaluate():
        on = ChampSimLite(COFFEE_LAKE_I7_9700, prefetcher_enabled=True).run("x", ips, addrs)
        off = ChampSimLite(COFFEE_LAKE_I7_9700, prefetcher_enabled=False).run("x", ips, addrs)
        flushed = ChampSimLite(
            COFFEE_LAKE_I7_9700, prefetcher_enabled=True, flush_period_cycles=30_000
        ).run("x", ips, addrs)
        return on, off, flushed

    on, off, flushed = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    slowdown_off = 1 - off.ipc / on.ipc
    slowdown_flush = 1 - flushed.ipc / on.ipc
    print(
        f"\nlibquantum-like: disabling costs {slowdown_off * 100:.0f}% IPC, "
        f"flushing costs {slowdown_flush * 100:.2f}%"
    )
    assert slowdown_off > 0.5  # "high performance overhead"
    assert slowdown_flush < 0.02
