"""Telemetry benchmark: attribute the parallel executor's overhead.

Runs the attack suite through the :class:`~repro.attacks.TrialExecutor`
three ways — serial with telemetry, parallel without, parallel with —
and writes ``BENCH_telemetry.json``:

* the **attribution** block partitions the parallel wall-clock into the
  serialize/queue/compute/merge/serial buckets (coverage is asserted
  >= 95%), which is what finally names the dominant source of the
  long-standing 0.911 "speedup" regression in ``BENCH_attacks.json``;
* the **overhead_analysis** block diffs the parallel run against the
  serial run: ``compute_inflation_seconds`` is how much longer the same
  simulated work took inside pool workers (timesharing on an
  oversubscribed host), compared against the measured pickling, queue
  and merge costs;
* ``telemetry_overhead_ratio`` asserts the instrumentation contract —
  turning telemetry on adds less than ``telemetry_overhead_bound`` (5%,
  mirroring the NullTracer guarantee) to the executor's cost — and
  ``aggregates_identical`` asserts that same-seed aggregates are
  byte-identical with telemetry on, off, serial, and parallel.

The overhead ratio is computed from **process CPU seconds**
(:func:`os.times`, including reaped pool children): the median of the
per-pair on/off ratios over N adjacent off/on pairs.  On a shared host,
wall-clock for identical work swings far more than 5% run to run (steal
time, timesharing) and even CPU seconds drift with host load over a
minutes-long session, so neither a single pair nor a global best-of-N
can certify a 5% bound; the two runs *within* a pair are adjacent in
time, so their ratio cancels the slow drift, and the median over pairs
rejects an unlucky outlier.  The raw samples are recorded so the noise
floor is visible in the artifact.

The script exits non-zero when any asserted contract fails, so it can
gate CI directly; ``afterimage bench compare`` re-checks the recorded
numbers against a committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from dataclasses import replace

from repro.attacks import TrialExecutor, attack_names, build_matrix, get_attack
from repro.bench import provenance
from repro.params import preset

#: Bump when the JSON layout changes so downstream diffing can gate on it.
SCHEMA_VERSION = 1

#: The instrumentation contract: telemetry on/off moves wall-clock < 5%.
OVERHEAD_BOUND = 0.05

#: The attribution contract: >= 95% of wall-clock lands in named buckets.
COVERAGE_FLOOR = 0.95


def canonical(merged: dict) -> str:
    """Wall-clock-free canonical JSON of an executor's merged batches."""
    return json.dumps(
        {name: batch.wall_clock_free_dict() for name, batch in merged.items()},
        sort_keys=True,
        separators=(",", ":"),
    )


def _timed_run(executor, tasks):
    """Run the executor, returning (result, cpu_seconds incl. children)."""
    before = os.times()
    result = executor.run(tasks)
    after = os.times()
    cpu = (
        (after.user - before.user)
        + (after.system - before.system)
        + (after.children_user - before.children_user)
        + (after.children_system - before.children_system)
    )
    return result, cpu


def bench_telemetry(
    machine_name: str,
    seed: int,
    rounds_scale: float,
    attacks: Sequence[str],
    jobs: int,
    repeats: int = 2,
    pairs: int = 3,
) -> dict:
    params = preset(machine_name)
    tasks = [
        replace(
            task,
            rounds=max(1, int(get_attack(task.attack).default_rounds * rounds_scale)),
        )
        for task in build_matrix(
            attacks, base_seed=seed, repeats=repeats, params=(params,)
        )
    ]
    serial_on, _ = _timed_run(TrialExecutor(jobs=1, telemetry=True), tasks)

    # Alternate off/on pairs; best-of-N CPU seconds is the overhead
    # estimator (see module docstring), best-of-N wall the speedup one.
    off_runs, on_runs = [], []
    for _ in range(max(1, pairs)):
        off_runs.append(_timed_run(TrialExecutor(jobs=jobs, telemetry=False), tasks))
        on_runs.append(_timed_run(TrialExecutor(jobs=jobs, telemetry=True), tasks))
    off_cpus = [cpu for _, cpu in off_runs]
    on_cpus = [cpu for _, cpu in on_runs]
    parallel_off = min((result for result, _ in off_runs), key=lambda r: r.wall_seconds)
    parallel_on = min((result for result, _ in on_runs), key=lambda r: r.wall_seconds)

    baseline = canonical(serial_on.merged)
    aggregates_identical = all(
        canonical(result.merged) == baseline
        for result, _ in [*off_runs, *on_runs]
    )
    ratios = sorted(
        (on - off) / off for off, on in zip(off_cpus, on_cpus) if off > 0
    )
    if not ratios:
        overhead = 0.0
    elif len(ratios) % 2:
        overhead = ratios[len(ratios) // 2]
    else:
        mid = len(ratios) // 2
        overhead = (ratios[mid - 1] + ratios[mid]) / 2

    timeline = parallel_on.telemetry
    serial_timeline = serial_on.telemetry
    assert timeline is not None and serial_timeline is not None
    buckets = timeline.buckets()
    serial_buckets = serial_timeline.buckets()
    # The same simulated work ran in both passes, so any extra wall-clock
    # the workers spent computing is oversubscription (timesharing, fork
    # copy-on-write traffic) — not pickling or queueing.
    compute_inflation = max(0.0, buckets["compute"] - serial_buckets["compute"])
    overheads = {
        "serialize_seconds": buckets["serialize"],
        "queue_seconds": buckets["queue"],
        "merge_seconds": buckets["merge"],
        "serial_seconds": buckets["serial"],
        "compute_inflation_seconds": compute_inflation,
    }
    dominant = max(overheads, key=lambda name: overheads[name])

    return {
        "schema": SCHEMA_VERSION,
        "kind": "telemetry",
        "provenance": provenance(),
        "machine": machine_name,
        "seed": seed,
        "rounds_scale": rounds_scale,
        "n_tasks": len(tasks),
        "repeats": repeats,
        "jobs": jobs,
        "pairs": len(off_runs),
        "serial_wall_seconds": round(serial_on.wall_seconds, 4),
        "parallel_wall_seconds": round(parallel_on.wall_seconds, 4),
        "parallel_wall_seconds_telemetry_off": round(parallel_off.wall_seconds, 4),
        "speedup": (
            round(serial_on.wall_seconds / parallel_on.wall_seconds, 3)
            if parallel_on.wall_seconds > 0
            else None
        ),
        "telemetry_overhead_ratio": round(overhead, 4),
        "telemetry_overhead_bound": OVERHEAD_BOUND,
        "telemetry_overhead_basis": "median per-pair CPU-seconds ratio "
        f"(os.times incl. children) over {len(off_runs)} adjacent off/on pairs",
        "cpu_seconds_samples": {
            "telemetry_off": [round(cpu, 3) for cpu in off_cpus],
            "telemetry_on": [round(cpu, 3) for cpu in on_cpus],
        },
        "aggregates_identical": aggregates_identical,
        "attribution": timeline.attribution(),
        "totals": timeline.totals(),
        "utilization": timeline.utilization(),
        "overhead_analysis": {
            **{name: round(value, 4) for name, value in overheads.items()},
            "serial_compute_seconds": round(serial_buckets["compute"], 4),
            "parallel_compute_seconds": round(buckets["compute"], 4),
            "dominant_overhead": dominant,
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    names = attack_names()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument("--machine", default="i7-9700")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--rounds-scale",
        type=float,
        default=1.0,
        help="multiply every attack's default round count (0.25 for a quick pass)",
    )
    parser.add_argument(
        "--attacks", nargs="*", default=list(names), choices=names,
        help="subset of attacks to run (default: all)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--pairs", type=int, default=3,
        help="alternating off/on run pairs for the best-of-N overhead estimate",
    )
    args = parser.parse_args(argv)

    document = bench_telemetry(
        args.machine, args.seed, args.rounds_scale, args.attacks,
        jobs=args.jobs, repeats=args.repeats, pairs=args.pairs,
    )
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    attribution = document["attribution"]
    analysis = document["overhead_analysis"]
    print(
        f"telemetry: {document['n_tasks']} tasks  "
        f"serial {document['serial_wall_seconds']:.2f}s  "
        f"jobs={document['jobs']} {document['parallel_wall_seconds']:.2f}s  "
        f"speedup {document['speedup']}x  "
        f"telemetry overhead {document['telemetry_overhead_ratio'] * 100:+.1f}%"
    )
    for name, entry in attribution["buckets"].items():
        print(f"  {name:<10} {entry['seconds']:>8.3f}s  {entry['share']:>6.1%}")
    print(
        f"coverage {attribution['coverage'] * 100:.1f}%  "
        f"dominant overhead: {analysis['dominant_overhead']} "
        f"(compute inflation {analysis['compute_inflation_seconds']:.2f}s)"
    )
    print(f"wrote {args.out}")

    failures = []
    if not document["aggregates_identical"]:
        failures.append("same-seed aggregates differ across executor modes")
    if attribution["coverage"] < COVERAGE_FLOOR:
        failures.append(
            f"attribution coverage {attribution['coverage']:.3f} < {COVERAGE_FLOOR}"
        )
    if abs(document["telemetry_overhead_ratio"]) > OVERHEAD_BOUND:
        failures.append(
            f"|telemetry overhead| {abs(document['telemetry_overhead_ratio']):.3f} "
            f"> {OVERHEAD_BOUND}"
        )
    for failure in failures:
        print(f"contract violated: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
