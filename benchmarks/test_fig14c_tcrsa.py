"""Figure 14c + §7.3: end-to-end key recovery from timing-constant RSA.

Paper: per-bit PSC latencies alternate with the key bits (an 8-bit window
b'01010101 in the figure); at most 5 iterations per bit at PSC's 82 %
single-shot success rate; 1024 bits project to ≈188 minutes of wall clock.
"""

from benchmarks.conftest import print_series
from repro.core.tc_rsa_attack import TimingConstantRSAAttack
from repro.cpu.machine import Machine
from repro.crypto.primes import RSAKey
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.rng import make_rng


def _key_with_alternating_window() -> RSAKey:
    """A small real keypair whose exponent starts with ...01010101..."""
    rng = make_rng(0)
    from repro.crypto.primes import generate_keypair

    for seed in range(200):
        key = generate_keypair(64, make_rng(seed))
        bits = [(key.d >> i) & 1 for i in range(key.d.bit_length() - 1, -1, -1)]
        for start in range(len(bits) - 8):
            if bits[start : start + 8] == [0, 1, 0, 1, 0, 1, 0, 1]:
                return key
    raise AssertionError("no key with a b'01010101 window found")


def test_fig14c_bit_latencies(benchmark):
    key = _key_with_alternating_window()
    machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=146)
    attack = TimingConstantRSAAttack(machine, key, sync_slip_prob=0.0)
    votes = benchmark.pedantic(lambda: attack.observe_pass(0xC0FFEE), rounds=1, iterations=1)

    bits = attack._true_bits(None)
    window = next(
        i for i in range(len(bits) - 8) if bits[i : i + 8] == [0, 1, 0, 1, 0, 1, 0, 1]
    )
    rows = [
        (k + 1, bits[window + k], votes[window + k][1])
        for k in range(8)
    ]
    print_series(
        "Figure 14c — PSC latency per key bit (window b'01010101)",
        rows,
        ("#secret key bit", "true bit", "PSC latency (cycles)"),
    )
    threshold = machine.hit_threshold()
    for _idx, bit, latency in rows:
        # bit=1: the targeted load ran, the prefetcher no longer triggers.
        assert (latency >= threshold) == bool(bit)


def test_full_key_recovery_and_projection(benchmark):
    from repro.crypto.primes import generate_keypair

    key = generate_keypair(128, make_rng(77))
    machine = Machine(COFFEE_LAKE_I7_9700, seed=147)
    attack = TimingConstantRSAAttack(machine, key)
    result = benchmark.pedantic(
        lambda: attack.recover_key_bits(ciphertext=0xC0FFEE), rounds=1, iterations=1
    )
    usable = sum(len(o.votes) for o in result.observations)
    total = sum(o.attempts for o in result.observations)
    print(
        f"\nTC-RSA recovery: {len(result.true_bits)}-bit exponent, "
        f"{result.bit_errors} bit errors after {result.passes} passes; "
        f"PSC single-shot success {usable / total * 100:.0f}% (paper: 82%); "
        f"projected wall clock for 1024 bits: "
        f"{result.projected_minutes_for_bits():.0f} min (paper: 188 min)"
    )
    assert result.bit_errors <= 1
    assert 0.72 <= usable / total <= 0.92
    assert 150 <= result.projected_minutes_for_bits() <= 220
