"""Table 1: prefetching across logical pages and physical page frames.

Paper: the reclaimable pool (virtual pages sharing one physical frame)
stays prefetchable at every offset; MAP_LOCKED pages are prefetchable only
one page ahead (next-page prefetcher), not beyond.
"""

from benchmarks.conftest import print_series
from repro.params import COFFEE_LAKE_I7_9700
from repro.revng.page_boundary import PageBoundaryExperiment


def test_table1_page_boundary(benchmark):
    exp = PageBoundaryExperiment(COFFEE_LAKE_I7_9700)
    rows = benchmark.pedantic(lambda: exp.run(max_offset=4), rounds=1, iterations=1)
    print_series(
        "Table 1 — prefetchability across page boundaries",
        [
            (
                f"{r.virtual_page_offset} page",
                r.pool,
                "yes" if r.shares_physical_page else "no",
                "yes" if r.prefetchable else "no",
                r.access_time,
            )
            for r in rows
        ],
        ("virtual offset", "pool", "shares frame", "prefetchable", "cycles"),
    )
    for r in rows:
        if r.pool == "recl":
            assert r.prefetchable and r.shares_physical_page
        elif r.virtual_page_offset == 1:
            assert r.prefetchable and not r.shares_physical_page
        else:
            assert not r.prefetchable

    # §4.3 narrative: the second access on a TLB-missing page activates.
    assert exp.second_access_activates()
