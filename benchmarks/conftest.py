"""Shared helpers for the figure/table benchmarks.

Every module regenerates the data behind one of the paper's tables or
figures, prints the rows/series the paper reports, asserts the *shape*
(who wins, by what factor, where the transitions fall), and uses
pytest-benchmark to time the underlying primitive.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the series.
"""

from __future__ import annotations


def print_series(title: str, rows: list[tuple], header: tuple[str, ...]) -> None:
    """Print one figure's data series in a compact aligned table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
