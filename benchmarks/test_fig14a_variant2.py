"""Figure 14a: Variant 2 — leaking a kernel branch to user space.

Paper: after the §5.2 IP search finds the syscall load's prefetcher index,
training it with stride 11 makes the kernel's if-path visible as a hit pair
11 lines apart in the shared memory_space.
"""

from benchmarks.conftest import print_series
from repro.core.variant2 import Variant2UserKernel
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.rng import make_rng


def test_fig14a_user_kernel_leak(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=141)
    rng = make_rng(141)
    attack = Variant2UserKernel(machine, secret_source=lambda: int(rng.integers(0, 2)))

    search = attack.find_target_index()
    assert search.found
    assert search.index == attack.true_target_index
    print(
        f"\nIP search: index {search.index} found after {search.syscalls_used} "
        f"syscalls over {search.groups_tested} group tests"
    )

    # One attack round with the branch forced taken, for the figure.
    taken_attack = Variant2UserKernel(
        Machine(COFFEE_LAKE_I7_9700, seed=142), secret_source=lambda: 1
    )
    taken_attack.find_target_index()
    samples = benchmark.pedantic(
        lambda: taken_attack.reload_samples_after_round(demand_line=20),
        rounds=1,
        iterations=1,
    )
    print_series(
        "Figure 14a — Flush+Reload latencies after the syscall (stride 11)",
        [(s.line, s.latency, "hit" if s.hit else "") for s in samples],
        ("#cache set", "cycles", "class"),
    )
    hits = {s.line for s in samples if s.hit}
    assert 20 in hits and 31 in hits  # demand + stride-11 prefetch
