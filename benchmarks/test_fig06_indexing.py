"""Figure 6: IP-stride prefetcher trigger vs. matched low IP bits.

Paper: access times drop below the 120-cycle threshold exactly when the
low 8 bits of IP_2 match IP_1 — and stay low for any larger match (no tag).
"""

from benchmarks.conftest import print_series
from repro.params import COFFEE_LAKE_I7_9700
from repro.revng.indexing import IndexingExperiment


def test_fig06_indexing(benchmark):
    exp = IndexingExperiment(COFFEE_LAKE_I7_9700)
    samples = benchmark.pedantic(lambda: exp.run(max_bits=16), rounds=1, iterations=1)
    print_series(
        "Figure 6 — access time vs #matched least-significant bits of IP",
        [(s.matched_bits, s.access_time, "hit" if s.prefetched else "miss") for s in samples],
        ("matched_bits", "access_time_cycles", "class"),
    )
    threshold = COFFEE_LAKE_I7_9700.llc_hit_threshold
    for s in samples:
        assert s.prefetched == (s.matched_bits >= 8), s
        assert (s.access_time < threshold) == (s.matched_bits >= 8)
