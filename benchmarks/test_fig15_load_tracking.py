"""Figure 15 + §7.4: tracking OpenSSL-RSA load timing via AfterImage-PSC.

Paper: the poll-latency stream is flat while the victim idles and shows a
characteristic *double miss* when the monitored load executes (one for the
clobbered entry, one more because the stride must re-train, §4.2).
"""

from benchmarks.conftest import print_series
from repro.core.load_tracker import LoadTimingTracker, OpenSSLRSAVictim, VictimPhase
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700


def _run(target: str, seed: int):
    machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=seed)
    victim_ctx = machine.new_thread("openssl-rsa")
    victim = OpenSSLRSAVictim(machine, victim_ctx)
    tracker = LoadTimingTracker(machine, victim, target=target)
    return victim, tracker.track()


def test_fig15_key_load_tracking(benchmark):
    victim, samples = benchmark.pedantic(
        lambda: _run("key-load", 151), rounds=1, iterations=1
    )
    print_series(
        "Figure 15 (left) — PSC latency while tracking the key load",
        [(s.poll_index, s.latency, s.victim_phase.value) for s in samples],
        ("poll", "latency (cycles)", "victim phase"),
    )
    misses = [s.poll_index for s in samples if not s.prefetcher_triggered]
    # Exactly the paper's two misses, at the key-load slice.
    assert misses == [victim.idle_slices, victim.idle_slices + 1]


def test_fig15_decrypt_tracking(benchmark):
    victim, samples = benchmark.pedantic(
        lambda: _run("decrypt", 152), rounds=1, iterations=1
    )
    print_series(
        "Figure 15 (right) — PSC latency while tracking the multiply-add load",
        [(s.poll_index, s.latency, s.victim_phase.value) for s in samples],
        ("poll", "latency (cycles)", "victim phase"),
    )
    miss_polls = {s.poll_index for s in samples if not s.prefetcher_triggered}
    decrypt_polls = {s.poll_index for s in samples if s.victim_phase is VictimPhase.DECRYPT}
    idle_before = {s.poll_index for s in samples if s.poll_index < victim.idle_slices}
    assert miss_polls  # decryption is visible
    assert miss_polls & idle_before == set()  # quiet while idle
    # Misses only during (or right after) the decryption phase.
    allowed = decrypt_polls | {max(decrypt_polls) + 1, max(decrypt_polls) + 2}
    assert miss_polls <= allowed
