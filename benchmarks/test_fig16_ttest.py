"""Figure 16: TVLA t-test with and without AfterImage's timing marker.

Paper: sampling the power trace at the AfterImage-provided S-box cycle
yields leakage t ≈ −18.8, far past the −4.5 threshold; sampling at random
cycles fluctuates around −2 and never crosses it.
"""

from benchmarks.conftest import print_series
from repro.analysis.ttest import LEAKAGE_THRESHOLD, TVLATest, tvla_sweep

COUNTS = [25, 50, 100, 200, 400, 800]


def test_fig16a_accurate_timing(benchmark):
    test = TVLATest(seed=160)
    results = benchmark.pedantic(
        lambda: tvla_sweep(test, COUNTS, accurate_timing=True), rounds=1, iterations=1
    )
    print_series(
        "Figure 16a — t-test with accurate (AfterImage) timing",
        [(r.n_plaintexts, round(r.t_value, 1), "LEAKS" if r.leaks else "") for r in results],
        ("#plaintexts", "t-value", "verdict"),
    )
    final = results[-1]
    assert final.t_value < -10  # paper: −18.8 at full trace count
    assert final.leaks
    # Monotone-ish growth in magnitude with the trace budget.
    assert abs(results[-1].t_value) > abs(results[0].t_value)


def test_fig16b_random_timing(benchmark):
    test = TVLATest(seed=161)
    results = benchmark.pedantic(
        lambda: tvla_sweep(test, COUNTS, accurate_timing=False), rounds=1, iterations=1
    )
    print_series(
        "Figure 16b — t-test with randomly picked timing",
        [(r.n_plaintexts, round(r.t_value, 1), "LEAKS" if r.leaks else "") for r in results],
        ("#plaintexts", "t-value", "verdict"),
    )
    assert all(abs(r.t_value) < LEAKAGE_THRESHOLD for r in results)
