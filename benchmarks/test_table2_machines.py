"""Table 2: both evaluation machines run every core mechanism.

The paper evaluates on an i7-4770 (Haswell, 4 cores, 8 MB LLC, no SGX) and
an i7-9700 (Coffee Lake, 8 cores, 12 MB LLC, SGX).  The attacks behave the
same on both — the prefetcher is identical across these generations, which
is the paper's point about how widespread the vulnerability is.
"""

import pytest

from benchmarks.conftest import print_series
from repro.core.variant1 import Variant1CrossProcess, Variant1CrossThread
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700, HASWELL_I7_4770
from repro.revng.indexing import IndexingExperiment


def test_table2_configurations(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (
                p.name,
                p.microarchitecture,
                p.cpu_cores,
                f"{p.llc_capacity_bytes // 2**20}MB",
                "yes" if p.aslr_enabled else "no",
                "yes" if p.sgx_supported else "no",
            )
            for p in (HASWELL_I7_4770, COFFEE_LAKE_I7_9700)
        ],
        rounds=1,
        iterations=1,
    )
    print_series(
        "Table 2 — architecture and system configurations",
        rows,
        ("machine", "uarch", "cores", "LLC", "ASLR/KASLR", "SGX"),
    )
    assert rows[0][3] == "8MB" and rows[1][3] == "12MB"


@pytest.mark.parametrize("params", [HASWELL_I7_4770, COFFEE_LAKE_I7_9700], ids=lambda p: p.name)
def test_indexing_identical_on_both_machines(benchmark, params):
    samples = benchmark.pedantic(
        lambda: IndexingExperiment(params).run(max_bits=12), rounds=1, iterations=1
    )
    for s in samples:
        assert s.prefetched == (s.matched_bits >= 8)


@pytest.mark.parametrize("params", [HASWELL_I7_4770, COFFEE_LAKE_I7_9700], ids=lambda p: p.name)
def test_variant1_works_on_both_machines(benchmark, params):
    def evaluate():
        ct = Variant1CrossThread(Machine(params, seed=210))
        cp = Variant1CrossProcess(Machine(params, seed=211))
        ct_rate = sum(ct.run_round(i % 2).success for i in range(40)) / 40
        cp_rate = sum(cp.run_round(i % 2).success for i in range(40)) / 40
        return ct_rate, cp_rate

    ct_rate, cp_rate = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\n{params.name}: cross-thread {ct_rate * 100:.0f}%  cross-process {cp_rate * 100:.0f}%")
    assert ct_rate >= 0.85
    assert cp_rate >= 0.85
