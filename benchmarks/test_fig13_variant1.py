"""Figure 13: AfterImage-Cache Variant 1 attack results.

(a) cross-thread single-bit extraction from the if-path via Prime+Probe:
    two cache sets stand out, exactly stride-7 apart;
(b) cross-thread round-by-round extraction of the secret b'10;
(c) cross-process round-by-round extraction via Flush+Reload.
"""

from benchmarks.conftest import print_series
from repro.core.variant1 import Variant1CrossProcess, Variant1CrossThread
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700


def test_fig13a_cross_thread_single_bit(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=131)
    attack = Variant1CrossThread(machine, s1_lines=7, s2_lines=13)
    result = benchmark.pedantic(
        lambda: attack.run_round(secret_bit=1, line=20), rounds=1, iterations=1
    )
    print_series(
        "Figure 13a — Prime+Probe deltas per cache set (victim took if-path)",
        [(s.set_ordinal, s.delta) for s in result.probe_samples],
        ("#cache set", "probe-prime delta (cycles)"),
    )
    hot = sorted(s.set_ordinal for s in result.probe_samples if s.delta > 1000)
    assert 20 in hot and 27 in hot  # distance exactly S1 = 7
    assert result.inferred_bit == 1


def test_fig13b_cross_thread_round_by_round(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=132)
    attack = Variant1CrossThread(machine, s1_lines=7, s2_lines=13)
    secret = [1, 0]  # the paper reads the rounds as b'10

    def run():
        return [attack.run_round(bit) for bit in secret]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Figure 13b — round-by-round leak (secret b'10)",
        [
            (i, r.true_bit, r.inferred_bit, "if" if r.inferred_bit else "else")
            for i, r in enumerate(results)
        ],
        ("round", "true", "leaked", "path"),
    )
    assert [r.inferred_bit for r in results] == secret


def test_fig13c_cross_process_flush_reload(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=133)
    attack = Variant1CrossProcess(machine, s1_lines=7, s2_lines=13)

    def run():
        return attack.reload_samples(secret_bit=0, line=24)

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Figure 13c — Flush+Reload latencies per line (victim took else-path)",
        [(s.line, s.latency, "hit" if s.hit else "") for s in samples],
        ("#cache set", "cycles", "class"),
    )
    hits = {s.line for s in samples if s.hit}
    assert 24 in hits and 37 in hits  # demand + stride-13 prefetch
    # Round-by-round over a longer secret.
    secret = [1, 0, 1, 1, 0]
    leaked = [attack.run_round(b).inferred_bit for b in secret]
    assert leaked == secret
