"""Figure 8: history-table capacity (8a) and replacement policy (8b).

Paper (8a): with 26 trained IPs the first 2 can no longer trigger; with 30,
the first 6 — the table holds 24 entries.
Paper (8b): after refreshing IPs 1-8 and training 8 new ones, the evicted
entries are the contiguous run 9-16: a Bit-PLRU-like policy, not FIFO.
"""

from benchmarks.conftest import print_series
from repro.params import COFFEE_LAKE_I7_9700
from repro.revng.entries import EntryCountExperiment
from repro.revng.replacement_policy import ReplacementPolicyExperiment
from repro.revng.sgx_interplay import SGXInterplayExperiment


def test_fig08a_entry_count(benchmark):
    exp = EntryCountExperiment(COFFEE_LAKE_I7_9700)

    def run_both():
        return {n: exp.run(n) for n in (26, 30)}

    by_n = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for n, samples in by_n.items():
        print_series(
            f"Figure 8a — {n} trained IPs (access time per input)",
            [(s.input_index, s.access_time, "hit" if s.triggered else "MISS") for s in samples],
            ("input", "cycles", "class"),
        )
        evicted = EntryCountExperiment.evicted_inputs(samples)
        expected_leading = set(range(1, n - 24 + 1))
        assert expected_leading <= set(evicted)
        # +1 allowed: probe-order reallocation artifact (DESIGN.md §4).
        assert len(evicted) <= (n - 24) + 2
    # Capacity conclusion: survivors ≈ 24 in both runs.
    for n, samples in by_n.items():
        assert sum(s.triggered for s in samples) >= 22


def test_fig08b_replacement_policy(benchmark):
    exp = ReplacementPolicyExperiment(COFFEE_LAKE_I7_9700)
    samples = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print_series(
        "Figure 8b — 32 IPs, first 8 refreshed, 8 new trained",
        [(s.input_index, s.access_time, "hit" if s.triggered else "MISS") for s in samples],
        ("input", "cycles", "class"),
    )
    evicted = set(ReplacementPolicyExperiment.evicted_inputs(samples))
    assert evicted & set(range(1, 9)) == set()  # refreshed entries survive (not FIFO)
    assert {9, 10, 11, 12, 13, 14, 15, 16} <= evicted  # contiguous run: Bit-PLRU-like
    assert evicted <= set(range(9, 18))


def test_sec46_sgx_interplay(benchmark):
    result = benchmark.pedantic(
        SGXInterplayExperiment(COFFEE_LAKE_I7_9700).run, rounds=1, iterations=1
    )
    print_series(
        "§4.6 — prefetched line validity after enclave exit",
        [
            ("prefetched line", result.prefetched_line_latency),
            ("untouched line", result.untouched_line_latency),
        ],
        ("line", "cycles"),
    )
    assert result.prefetched_survives_exit
