"""Serving-layer benchmark: cold vs. warm aggregate latency over HTTP.

Fills a shrunk ``attacks-vs-noise`` campaign into a fresh store, boots
the fleet daemon (:mod:`repro.fleet.server`) on a background event-loop
thread, and measures the read path end to end — TCP connect, request
parse, route, cache, serialize — the way a fleet reader would see it::

    python benchmarks/bench_serve.py --out BENCH_serve.json

Measured and written to ``BENCH_serve.json``:

* **cold_aggregate_seconds** — first ``/aggregate`` after boot: store
  read + merge + serialize (the cache-miss path).
* **warm_aggregate_p50/p99_seconds** — repeated ``/aggregate`` once the
  LRU holds the body.  The acceptance contract is p50 **< 10 ms**; the
  document records the verdict and ``afterimage bench compare`` gates
  on it.
* **revalidate_p50_seconds** — ``If-None-Match`` answered 304, the
  cheapest request the server can serve.
* **concurrent.p50/p99_seconds** — latency distribution under
  ``--readers`` threads (default 100) hammering warm aggregates at
  once, plus the server-side cache hit ratio over the whole run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import sys
import tempfile
import threading
from collections.abc import Sequence
from time import perf_counter  # repro: noqa[RL003] — benchmark measures host wall-clock

from repro.bench import provenance
from repro.campaign import CampaignRunner, TrialStore, builtin_campaign
from repro.fleet import FleetClient, FleetServer, start_in_thread

#: Bump when the JSON layout changes so downstream diffing can gate on it.
SCHEMA_VERSION = 2

#: The acceptance contract: a warm aggregate answers in under 10 ms.
WARM_BUDGET_SECONDS = 0.010


def _percentiles(samples: list[float]) -> tuple[float, float]:
    ordered = sorted(samples)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def _timed(fn) -> float:
    start = perf_counter()
    fn()
    return perf_counter() - start


def bench_serve(
    campaign: str,
    store_dir: str,
    rounds: int,
    repeats: int,
    attacks: str | None,
    jobs: int,
    warm_requests: int,
    readers: int,
    requests_per_reader: int,
) -> dict:
    """Fill, boot, measure; returns the JSON-ready result document."""
    spec = builtin_campaign(campaign)
    overrides: dict = {"rounds": rounds, "repeats": repeats}
    if attacks:
        overrides["attacks"] = tuple(attacks.split(","))
    spec = dataclasses.replace(spec, **overrides)
    fill = CampaignRunner(TrialStore(store_dir), jobs=jobs).run(spec)
    if not fill.complete:
        raise RuntimeError(f"fill failed: {len(fill.failed)} cells errored")

    server = FleetServer(store_dir, campaigns={spec.name: spec})
    with start_in_thread(server):
        client = FleetClient(server.host, server.port)
        path = f"/aggregate/{spec.name}"

        cold_seconds = _timed(lambda: client.get(path))
        etag = client.get(path).etag

        warm = [_timed(lambda: client.get(path)) for _ in range(warm_requests)]
        warm_p50, warm_p99 = _percentiles(warm)

        revalidate = [
            _timed(lambda: client.get(path, etag=etag))
            for _ in range(warm_requests)
        ]
        revalidate_p50, _ = _percentiles(revalidate)
        etag_revalidates = client.get(path, etag=etag).not_modified

        concurrent: list[float] = []
        lock = threading.Lock()

        def reader() -> None:
            local = FleetClient(server.host, server.port)
            samples = [
                _timed(lambda: local.get(path))
                for _ in range(requests_per_reader)
            ]
            with lock:
                concurrent.extend(samples)

        threads = [threading.Thread(target=reader) for _ in range(readers)]
        start = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_wall = perf_counter() - start
        concurrent_p50, concurrent_p99 = _percentiles(concurrent)

        stats = server.cache.stats
        aggregate_doc = client.get(path).json()

    return {
        "schema": SCHEMA_VERSION,
        "kind": "serve",
        "provenance": provenance(),
        "campaign": spec.name,
        "n_cells": spec.n_cells,
        "rounds": spec.rounds,
        "repeats": spec.repeats,
        "warm_requests": warm_requests,
        "readers": readers,
        "requests_per_reader": requests_per_reader,
        "cold_aggregate_seconds": round(cold_seconds, 6),
        "warm_aggregate_p50_seconds": round(warm_p50, 6),
        "warm_aggregate_p99_seconds": round(warm_p99, 6),
        "revalidate_p50_seconds": round(revalidate_p50, 6),
        "warm_budget_seconds": WARM_BUDGET_SECONDS,
        "concurrent": {
            "wall_seconds": round(concurrent_wall, 4),
            "requests": len(concurrent),
            "p50_seconds": round(concurrent_p50, 6),
            "p99_seconds": round(concurrent_p99, 6),
            "requests_per_second": (
                round(len(concurrent) / concurrent_wall, 1)
                if concurrent_wall > 0
                else None
            ),
        },
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_ratio": round(stats.hit_ratio, 4),
        },
        "verification": {
            "fill_complete": fill.complete,
            "aggregate_complete": aggregate_doc["complete"],
            "warm_under_budget": warm_p50 < WARM_BUDGET_SECONDS,
            "etag_revalidates": etag_revalidates,
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--campaign", default="attacks-vs-noise")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--attacks", default=None, help="override spec attacks (comma-separated)"
    )
    parser.add_argument("--warm-requests", type=int, default=50)
    parser.add_argument("--readers", type=int, default=100)
    parser.add_argument("--requests-per-reader", type=int, default=5)
    parser.add_argument(
        "--store",
        default=None,
        help="store directory (default: a fresh temp dir, so the fill is cold)",
    )
    args = parser.parse_args(argv)

    def run(store_dir: str) -> dict:
        return bench_serve(
            args.campaign,
            store_dir,
            args.rounds,
            args.repeats,
            args.attacks,
            args.jobs,
            args.warm_requests,
            args.readers,
            args.requests_per_reader,
        )

    if args.store is None:
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as store_dir:
            document = run(store_dir)
    else:
        document = run(args.store)
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    verification = document["verification"]
    print(
        f"{document['campaign']}: cold {document['cold_aggregate_seconds'] * 1e3:.1f}ms  "
        f"warm p50 {document['warm_aggregate_p50_seconds'] * 1e3:.2f}ms  "
        f"p99 {document['warm_aggregate_p99_seconds'] * 1e3:.2f}ms  "
        f"304 p50 {document['revalidate_p50_seconds'] * 1e3:.2f}ms"
    )
    concurrent = document["concurrent"]
    print(
        f"{document['readers']} readers x {document['requests_per_reader']}: "
        f"p50 {concurrent['p50_seconds'] * 1e3:.2f}ms  "
        f"p99 {concurrent['p99_seconds'] * 1e3:.2f}ms  "
        f"{concurrent['requests_per_second']} req/s  "
        f"cache hit ratio {document['cache']['hit_ratio']:.2%}"
    )
    print(f"wrote {args.out}")
    if not (
        verification["warm_under_budget"]
        and verification["etag_revalidates"]
        and verification["aggregate_complete"]
    ):
        print("serving contract violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
