"""Table 3 / §7.2: attack success rates over 200 rounds per variant.

Paper: Variant 1 cross-thread 99 %, Variant 1 cross-processes 97 %,
Variant 2 (user-kernel) 91 %.  We assert the bands and the ordering
(thread > process > kernel); absolute points depend on the calibrated
noise model (DESIGN.md §5).
"""

from repro.analysis.success_rate import measure_success_rate
from repro.core.variant1 import Variant1CrossProcess, Variant1CrossThread
from repro.core.variant2 import Variant2UserKernel
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700
from repro.utils.rng import make_rng

ROUNDS = 200  # the paper's evaluation size


def test_table3_variant1_cross_thread(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=171)
    attack = Variant1CrossThread(machine)
    rng = make_rng(171)

    def evaluate():
        return measure_success_rate(
            "V1 cross-thread",
            lambda _i: attack.run_round(int(rng.integers(0, 2))).success,
            rounds=ROUNDS,
        )

    report = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\n{report.summary()}  (paper: 99%)")
    assert report.success_rate >= 0.95


def test_table3_variant1_cross_process(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=172)
    attack = Variant1CrossProcess(machine)
    rng = make_rng(172)

    def evaluate():
        return measure_success_rate(
            "V1 cross-process",
            lambda _i: attack.run_round(int(rng.integers(0, 2))).success,
            rounds=ROUNDS,
        )

    report = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\n{report.summary()}  (paper: 97%)")
    assert report.success_rate >= 0.92


def test_table3_variant2_user_kernel(benchmark):
    machine = Machine(COFFEE_LAKE_I7_9700, seed=173)
    rng = make_rng(173)
    attack = Variant2UserKernel(machine, secret_source=lambda: int(rng.integers(0, 2)))
    search = attack.find_target_index()
    assert search.index == attack.true_target_index

    def evaluate():
        return measure_success_rate(
            "V2 user-kernel",
            lambda _i: attack.run_round().success,
            rounds=ROUNDS,
        )

    report = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\n{report.summary()}  (paper: 91%)")
    assert report.success_rate >= 0.85


def test_table3_ordering(benchmark):
    """Crossing a stronger isolation boundary costs accuracy: the kernel
    variant trails both user-space variants (the paper's 99/97/91 shape)."""
    rng = make_rng(174)

    def evaluate():
        at = Variant1CrossThread(Machine(COFFEE_LAKE_I7_9700, seed=174))
        thread_rate = sum(at.run_round(i % 2).success for i in range(100)) / 100

        ap = Variant1CrossProcess(Machine(COFFEE_LAKE_I7_9700, seed=175))
        process_rate = sum(ap.run_round(i % 2).success for i in range(100)) / 100

        mk = Machine(COFFEE_LAKE_I7_9700, seed=176)
        ak = Variant2UserKernel(mk, secret_source=lambda: int(rng.integers(0, 2)))
        ak.find_target_index()
        kernel_rate = sum(ak.run_round().success for _ in range(100)) / 100
        return thread_rate, process_rate, kernel_rate

    thread_rate, process_rate, kernel_rate = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    print(
        f"\nordering: cross-thread {thread_rate:.2f} / cross-process {process_rate:.2f}"
        f" / user-kernel {kernel_rate:.2f}"
    )
    assert thread_rate >= kernel_rate
    assert process_rate >= kernel_rate
