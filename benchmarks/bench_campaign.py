"""Campaign benchmark: cold vs. warm wall-clock through the trial store.

Runs a shrunk ``attacks-vs-noise`` campaign twice against a fresh
:class:`~repro.campaign.store.TrialStore` — the first pass executes every
cell, the second must be served entirely from the store — and writes
``BENCH_campaign.json`` with both wall-clocks, the measured speedup, and
a verification block asserting the warm pass executed zero cells with
byte-identical aggregates (the campaign layer's caching contract)::

    python benchmarks/bench_campaign.py --out BENCH_campaign.json --jobs 2

The cold wall-clock tracks simulator throughput like BENCH_obs.json does;
the warm wall-clock tracks store read-path overhead, which is the number
that must stay negligible as campaigns grow to paper-scale grids.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
from collections.abc import Sequence

from repro.bench import provenance
from repro.campaign import CampaignRunner, TrialStore, builtin_campaign

#: Bump when the JSON layout changes so downstream diffing can gate on it.
#: v2: provenance stamp + kind tag (`afterimage bench compare` gates on both).
SCHEMA_VERSION = 2


def canonical(aggregates: dict) -> str:
    return json.dumps(aggregates, sort_keys=True, separators=(",", ":"))


def bench_campaign(
    campaign: str,
    store_dir: str,
    jobs: int,
    rounds: int,
    repeats: int,
    attacks: str | None,
) -> dict:
    """Cold run then warm run; returns the JSON-ready result document."""
    spec = builtin_campaign(campaign)
    overrides: dict = {"rounds": rounds, "repeats": repeats}
    if attacks:
        overrides["attacks"] = tuple(attacks.split(","))
    spec = dataclasses.replace(spec, **overrides)
    runner = CampaignRunner(TrialStore(store_dir), jobs=jobs)
    cold = runner.run(spec)
    warm = runner.run(spec)
    return {
        "schema": SCHEMA_VERSION,
        "kind": "campaign",
        "provenance": provenance(),
        "campaign": spec.name,
        "n_cells": spec.n_cells,
        "rounds": spec.rounds,
        "repeats": spec.repeats,
        "jobs": jobs,
        "cold_wall_seconds": round(cold.wall_seconds, 4),
        "warm_wall_seconds": round(warm.wall_seconds, 4),
        "speedup": (
            round(cold.wall_seconds / warm.wall_seconds, 1)
            if warm.wall_seconds > 0
            else None
        ),
        "verification": {
            "cold_executed": cold.executed_count,
            "warm_executed": warm.executed_count,
            "warm_all_cached": warm.all_cached,
            "aggregates_identical": canonical(cold.aggregates())
            == canonical(warm.aggregates()),
        },
        "groups": {
            label: {
                "quality": batch.quality,
                "n_trials": batch.n_trials,
                "detail": batch.detail,
            }
            for label, batch in warm.merged().items()
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_campaign.json")
    parser.add_argument("--campaign", default="attacks-vs-noise")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--attacks", default=None, help="override spec attacks (comma-separated)"
    )
    parser.add_argument(
        "--store",
        default=None,
        help="store directory (default: a fresh temp dir, so the cold pass is cold)",
    )
    args = parser.parse_args(argv)

    if args.store is None:
        with tempfile.TemporaryDirectory(prefix="bench-campaign-") as store_dir:
            document = bench_campaign(
                args.campaign, store_dir, args.jobs, args.rounds, args.repeats, args.attacks
            )
    else:
        document = bench_campaign(
            args.campaign, args.store, args.jobs, args.rounds, args.repeats, args.attacks
        )
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    verification = document["verification"]
    print(
        f"{document['campaign']}: {document['n_cells']} cells  "
        f"cold {document['cold_wall_seconds']:.2f}s  "
        f"warm {document['warm_wall_seconds']:.2f}s  "
        f"speedup {document['speedup']}x"
    )
    print(
        f"warm executed {verification['warm_executed']} cells, "
        f"all cached: {verification['warm_all_cached']}, "
        f"aggregates identical: {verification['aggregates_identical']}"
    )
    print(f"wrote {args.out}")
    if not (
        verification["warm_all_cached"] and verification["aggregates_identical"]
    ):
        print("caching contract violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
