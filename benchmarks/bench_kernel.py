"""Kernel batching benchmark: N covert trials through one shared kernel.

Runs the same N-seed covert workload two ways — a serial
:func:`~repro.attacks.registry.run_trials` loop (one ``Machine`` and one
private kernel per seed) and a :class:`~repro.cpu.kernel.MachineBatch`
stepping all N lanes through a single :class:`~repro.cpu.kernel.SimKernel`
— and writes ``BENCH_kernel.json``:

* ``aggregates_identical`` — the equivalence contract: wall-clock-free
  ``TrialBatch`` aggregates from every batched run must be byte-identical
  to the serial loop's, seed by seed.  Interleaving lanes through one
  kernel must not change a single trial.
* ``batch_overhead_ratio`` — the performance contract: the median
  per-pair ``batched/serial - 1`` wall ratio over N *adjacent* pairs must
  stay within ``batch_overhead_bound`` — per-trial cost inside the shared
  kernel is no worse than the serial loop.  Pairs are adjacent in time
  for the same reason ``bench_telemetry`` uses them: on a shared host the
  slow load drift between distant runs swamps a ~10% bound, while two
  back-to-back runs see the same host state.
* ``lane_state`` totals from the array-shaped seam
  (:meth:`MachineBatch.lane_state`) — the numbers a future vectorized
  kernel must reproduce.

The script exits non-zero when any asserted contract fails, so it can
gate CI directly; ``afterimage bench compare`` re-checks the recorded
numbers against a committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from time import perf_counter  # repro: noqa[RL003] — benchmark measures host wall-clock

from repro.attacks.registry import run_trials
from repro.bench import provenance
from repro.cpu.kernel import MachineBatch
from repro.params import preset

#: Bump when the JSON layout changes so downstream diffing can gate on it.
SCHEMA_VERSION = 1

#: The performance contract: batching adds < 10% per-trial wall overhead.
OVERHEAD_BOUND = 0.10


def canonical(batches) -> str:
    """Wall-clock-free canonical JSON of a list of TrialBatch results."""
    return json.dumps(
        [batch.wall_clock_free_dict() for batch in batches],
        sort_keys=True,
        separators=(",", ":"),
    )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def bench_kernel(
    machine_name: str,
    base_seed: int,
    lanes: int,
    rounds: int,
    pairs: int = 3,
) -> dict:
    params = preset(machine_name)
    seeds = [base_seed + lane for lane in range(lanes)]

    serial_walls: list[float] = []
    batched_walls: list[float] = []
    baseline_canonical: str | None = None
    aggregates_identical = True
    last_batch: MachineBatch | None = None
    batched_results = []

    for _ in range(max(1, pairs)):
        start = perf_counter()
        serial_results = [
            run_trials("covert", params=params, seed=seed, rounds=rounds)
            for seed in seeds
        ]
        serial_walls.append(perf_counter() - start)

        start = perf_counter()
        batch = MachineBatch.of(lanes, base_seed=base_seed, params=params)
        batched_results = batch.run("covert", rounds=rounds)
        batched_walls.append(perf_counter() - start)
        last_batch = batch

        serial_canonical = canonical(serial_results)
        if baseline_canonical is None:
            baseline_canonical = serial_canonical
        if serial_canonical != baseline_canonical:
            aggregates_identical = False
        if canonical(batched_results) != baseline_canonical:
            aggregates_identical = False

    overhead = _median(
        [
            batched / serial - 1.0
            for serial, batched in zip(serial_walls, batched_walls)
            if serial > 0
        ]
    )
    serial_wall = min(serial_walls)
    batched_wall = min(batched_walls)

    assert last_batch is not None
    lane_state = last_batch.lane_state()
    return {
        "schema": SCHEMA_VERSION,
        "kind": "kernel",
        "provenance": provenance(),
        "machine": machine_name,
        "seed": base_seed,
        "lanes": lanes,
        "rounds": rounds,
        "pairs": len(serial_walls),
        "serial_wall_seconds": round(serial_wall, 4),
        "batched_wall_seconds": round(batched_wall, 4),
        "per_trial_serial_ms": round(1000.0 * serial_wall / lanes, 3),
        "per_trial_batched_ms": round(1000.0 * batched_wall / lanes, 3),
        "batch_speedup": (
            round(serial_wall / batched_wall, 3) if batched_wall > 0 else None
        ),
        "batch_overhead_ratio": round(overhead, 4),
        "batch_overhead_bound": OVERHEAD_BOUND,
        "batch_overhead_basis": "median per-pair batched/serial wall ratio "
        f"over {len(serial_walls)} adjacent serial/batched pairs",
        "wall_samples": {
            "serial": [round(wall, 3) for wall in serial_walls],
            "batched": [round(wall, 3) for wall in batched_walls],
        },
        "aggregates_identical": aggregates_identical,
        "simulated_cycles_total": int(lane_state["cycles"].sum()),
        "kernel_events_total": int(lane_state["events"].sum()),
        "loads_retired_total": int(lane_state["retired"].sum()),
        "mean_quality": round(
            sum(batch.quality for batch in batched_results) / len(batched_results), 6
        ),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument("--machine", default="i7-9700")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--lanes", type=int, default=32,
        help="trials stepped through one kernel (the acceptance floor is 32)",
    )
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument(
        "--pairs", type=int, default=3,
        help="adjacent serial/batched pairs for the median overhead estimate",
    )
    args = parser.parse_args(argv)
    if args.lanes <= 0 or args.rounds <= 0 or args.pairs <= 0:
        parser.error("--lanes, --rounds and --pairs must be positive")

    document = bench_kernel(
        args.machine, args.seed, args.lanes, args.rounds, pairs=args.pairs
    )
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(
        f"kernel bench: {args.lanes} lanes x {args.rounds} rounds, "
        f"serial {document['serial_wall_seconds']:.2f}s, "
        f"batched {document['batched_wall_seconds']:.2f}s "
        f"(overhead {document['batch_overhead_ratio']:+.1%}, "
        f"bound {document['batch_overhead_bound']:.0%})"
    )
    failed = False
    if not document["aggregates_identical"]:
        print("FAIL: batched aggregates differ from the serial loop", file=sys.stderr)
        failed = True
    if document["batch_overhead_ratio"] > document["batch_overhead_bound"]:
        print(
            f"FAIL: batch overhead {document['batch_overhead_ratio']:+.1%} exceeds "
            f"the {document['batch_overhead_bound']:.0%} bound",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
