# Convenience targets; everything works without make, see docs/LINT.md.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-sanitize lint lint-json bench

test:
	$(PYTHON) -m pytest -x -q

test-sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.lint src tests benchmarks examples

lint-json:
	$(PYTHON) -m repro.lint src tests benchmarks examples --format json

bench:
	$(PYTHON) -m pytest benchmarks -q
