# Convenience targets; everything works without make, see docs/LINT.md.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-sanitize lint lint-json leakcheck bench check

test:
	$(PYTHON) -m pytest -x -q

test-sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.lint src tests benchmarks examples

lint-json:
	$(PYTHON) -m repro.lint src tests benchmarks examples --format json

leakcheck:
	$(PYTHON) -m repro.leakcheck --suite

bench:
	$(PYTHON) -m pytest benchmarks -q

# The CI gate: static analysis, the leakage-verdict matrix, and a
# sanitizer-instrumented smoke slice of the test suite.
check: lint leakcheck
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q tests/test_examples.py tests/test_leakcheck.py
	@echo "check: all gates passed"
