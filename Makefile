# Convenience targets; everything works without make, see docs/LINT.md.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-sanitize lint lint-fast lint-json lint-changed leakcheck leakcheck-scan bench bench-figures campaign campaign-smoke fleet-smoke kernel-equivalence check

test:
	$(PYTHON) -m pytest -x -q

test-sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

# Full pass: syntactic rules + the CFG/dataflow rules (RL014-RL019).
lint:
	$(PYTHON) -m repro.lint src tests benchmarks examples

# Syntactic rules only (the flow pass dominates lint wall time).
lint-fast:
	$(PYTHON) -m repro.lint src tests benchmarks examples --no-flow

lint-json:
	$(PYTHON) -m repro.lint src tests benchmarks examples --format json

# Pre-commit convenience: lint only files changed vs HEAD.
lint-changed:
	$(PYTHON) -m repro.lint src tests benchmarks examples --changed

leakcheck:
	$(PYTHON) -m repro.leakcheck --suite

# Whole-tree gadget discovery (exit 1 = gadgets found is expected: the
# simulator sources *are* AfterImage gadgets; exit 3 = the scan itself
# crashed and must fail the gate), then the planted-fixture positive
# control, which must flag EX001 (exit 1) or the scan is blind.
leakcheck-scan:
	$(PYTHON) -m repro.leakcheck --scan src/repro/crypto src/repro/kernel src/repro/core; \
		rc=$$?; if [ $$rc -ne 0 ] && [ $$rc -ne 1 ]; then \
			echo "leakcheck --scan crashed (exit $$rc)"; exit $$rc; fi
	@$(PYTHON) -m repro.leakcheck --extract src/repro/leakcheck/extract/fixtures.py > /dev/null; \
		rc=$$?; if [ $$rc -ne 1 ]; then \
			echo "positive control failed: fixture scan exited $$rc, want 1"; exit 1; \
		else echo "positive control: planted fixture flagged (exit 1)"; fi

# Per-attack wall-clock / simulated-cycle totals -> BENCH_obs.json, plus
# the serial-vs-parallel executor comparison -> BENCH_attacks.json, the
# cold-vs-warm campaign store comparison -> BENCH_campaign.json and the
# cross-process telemetry contract -> BENCH_telemetry.json and the
# batched-kernel equivalence/overhead contract -> BENCH_kernel.json and
# the serving-layer latency contract -> BENCH_serve.json.
# Pre-existing artifacts are snapshotted to *.baseline and diffed with the
# regression gate (generous tolerance: same-machine wall clocks still
# wobble under load; the determinism fields are compared exactly
# regardless).
BENCH_ARTIFACTS := BENCH_obs.json BENCH_attacks.json BENCH_campaign.json BENCH_telemetry.json BENCH_kernel.json BENCH_serve.json

bench:
	@for f in $(BENCH_ARTIFACTS); do \
		if [ -f $$f ]; then cp $$f $$f.baseline; fi; done
	$(PYTHON) benchmarks/bench_obs.py --out BENCH_obs.json --attacks-out BENCH_attacks.json --jobs 2
	$(PYTHON) benchmarks/bench_campaign.py --out BENCH_campaign.json --jobs 2
	$(PYTHON) benchmarks/bench_telemetry.py --out BENCH_telemetry.json --jobs 2
	$(PYTHON) benchmarks/bench_kernel.py --out BENCH_kernel.json
	$(PYTHON) benchmarks/bench_serve.py --out BENCH_serve.json --jobs 2
	@for f in $(BENCH_ARTIFACTS); do \
		if [ -f $$f.baseline ]; then \
			$(PYTHON) -m repro bench compare $$f.baseline $$f --tolerance 0.5 || exit 1; \
		fi; done

# The three paper-evaluation grids, cached and resumable in .campaign-store
# (re-run `make campaign` after an interrupt: finished cells are not redone).
campaign:
	$(PYTHON) -m repro.cli campaign run revng-table1 --store .campaign-store --jobs 2
	$(PYTHON) -m repro.cli campaign run attacks-vs-noise --store .campaign-store --jobs 2
	$(PYTHON) -m repro.cli campaign run defense-matrix --store .campaign-store --jobs 2

# The CI smoke: a tiny campaign twice; the second pass must be 100% cache
# hits with byte-identical aggregates (asserted inside the benchmark).
campaign-smoke:
	$(PYTHON) benchmarks/bench_campaign.py --out BENCH_campaign.json --campaign attacks-vs-noise --attacks variant1,sgx --rounds 3 --store campaign-smoke-store

# Fleet fill in miniature (mirrors the CI `fleet-smoke` job): the 24-cell
# attacks-vs-noise grid filled serially and by two --shard workers in
# parallel, workers merged, and the two aggregates diffed byte-for-byte;
# then the serving-layer latency contract over the merged store.
FLEET_SMOKE_ARGS := attacks-vs-noise --repeats 1 --rounds 6
fleet-smoke:
	rm -rf fleet-smoke-store
	$(PYTHON) -m repro.cli campaign run $(FLEET_SMOKE_ARGS) --store fleet-smoke-store/serial --jobs 2
	$(PYTHON) -m repro.cli campaign run $(FLEET_SMOKE_ARGS) --shard 0/2 --store fleet-smoke-store/worker-0 --jobs 2 & \
		$(PYTHON) -m repro.cli campaign run $(FLEET_SMOKE_ARGS) --shard 1/2 --store fleet-smoke-store/worker-1 --jobs 2 & \
		wait
	$(PYTHON) -m repro.cli campaign merge fleet-smoke-store/worker-0 fleet-smoke-store/worker-1 --store fleet-smoke-store/merged
	$(PYTHON) -m repro.cli campaign aggregate $(FLEET_SMOKE_ARGS) --store fleet-smoke-store/serial -o fleet-smoke-store/serial.agg.json
	$(PYTHON) -m repro.cli campaign aggregate $(FLEET_SMOKE_ARGS) --store fleet-smoke-store/merged -o fleet-smoke-store/merged.agg.json
	cmp fleet-smoke-store/serial.agg.json fleet-smoke-store/merged.agg.json
	@echo "fleet-smoke: sharded fill + merge is byte-identical to the serial run"
	$(PYTHON) benchmarks/bench_serve.py --out BENCH_serve.ci.json --rounds 6 --attacks variant1,covert --readers 20 --requests-per-reader 3
	@rm -f BENCH_serve.ci.json

# The kernel refactor gate: the differential suite (golden traces +
# batch-vs-serial equality), then a scaled batched-covert bench whose
# built-in contracts (identical aggregates, overhead bound) exit non-zero
# on violation.  Mirrors the CI `kernel-equivalence` job.
kernel-equivalence:
	$(PYTHON) -m pytest -x -q tests/test_kernel_equivalence.py tests/test_machine_batch.py
	$(PYTHON) benchmarks/bench_kernel.py --out BENCH_kernel.ci.json --lanes 32 --rounds 2 --pairs 1
	@rm -f BENCH_kernel.ci.json

# The paper-figure pytest benchmarks (the old `make bench`).
bench-figures:
	$(PYTHON) -m pytest benchmarks -q

# The CI gate: static analysis, the leakage-verdict matrix, the
# extraction scan (with its seeded-fixture positive control), a
# sanitizer-instrumented smoke slice of the test suite, and the
# observability overhead/determinism tests.
check: lint leakcheck leakcheck-scan
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q tests/test_examples.py tests/test_leakcheck.py
	$(PYTHON) -m pytest -x -q tests/test_obs.py tests/test_obs_metrics.py tests/test_obs_overhead.py
	@echo "check: all gates passed"
